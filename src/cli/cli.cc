#include "cli/cli.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include <iostream>

#include "api/query.h"
#include "api/serde.h"
#include "common/fault_injection.h"
#include "common/posix_io.h"
#include "common/str_util.h"
#include "core/min_length.h"
#include "core/mss.h"
#include "core/parallel.h"
#include "core/significance.h"
#include "core/streaming.h"
#include "core/suffix_scan.h"
#include "core/threshold.h"
#include "core/top_disjoint.h"
#include "core/top_t.h"
#include "core/x2_dispatch.h"
#include "engine/corpus.h"
#include "engine/engine.h"
#include "engine/engine_stats.h"
#include "engine/job.h"
#include "engine/stream_manager.h"
#include "persist/journal.h"
#include "server/client.h"
#include "server/server.h"
#include "io/table_writer.h"
#include "seq/alphabet.h"
#include "seq/sequence.h"
#include "stats/chi_squared.h"
#include "stats/count_statistics.h"

namespace sigsub {
namespace cli {
namespace {

const char* const kCommands[] = {"mss",   "topt",       "threshold", "minlen",
                                 "score", "substrings", "batch",     "query",
                                 "stream", "serve",     "client"};

/// Flags every command accepts.
const char* const kCommonFlags[] = {"string", "input", "alphabet", "probs",
                                    "x2-dispatch"};

/// Command-specific flags; anything else the user passes is rejected with
/// an InvalidArgument naming the flag and the command.
struct CommandFlags {
  const char* command;
  std::vector<const char*> flags;
};

const CommandFlags kCommandFlags[] = {
    {"mss", {"threads"}},
    {"topt", {"t", "disjoint", "min-length"}},
    {"threshold", {"alpha0", "pvalue"}},
    {"minlen", {"min-length"}},
    {"score", {"start", "end"}},
    {"substrings",
     {"top", "min-length", "max-length", "min-count", "all", "positions",
      "mmap", "alpha0", "alpha-p", "cache"}},
    {"batch",
     {"job", "format", "column", "csv-header", "threads", "cache",
      "shard-min", "t", "min-length", "alpha0", "pvalue", "alpha-p",
      "verbose"}},
    {"query",
     {"query", "queries-file", "format", "column", "csv-header", "threads",
      "cache", "shard-min"}},
    {"stream", {"alpha", "max-window", "chunk"}},
    {"serve",
     {"port", "host", "threads", "cache", "shard-min", "max-clients",
      "max-queue", "max-inflight", "idle-timeout-ms", "max-runtime-ms",
      "format", "column", "csv-header", "state-dir", "fsync",
      "snapshot-interval-ms"}},
    {"client",
     {"port", "host", "send", "timeout-ms", "linger-ms", "retries",
      "backoff-ms"}},
};

Status ValidateFlagsForCommand(const std::string& command,
                               const std::vector<std::string>& seen_flags) {
  const CommandFlags* entry = nullptr;
  for (const CommandFlags& candidate : kCommandFlags) {
    if (command == candidate.command) entry = &candidate;
  }
  for (const std::string& flag : seen_flags) {
    bool allowed = false;
    for (const char* common : kCommonFlags) {
      if (flag == common) allowed = true;
    }
    if (entry != nullptr) {
      for (const char* name : entry->flags) {
        if (flag == name) allowed = true;
      }
    }
    if (!allowed) {
      return Status::InvalidArgument(StrCat(
          "flag --", flag, " is not valid for command ", command, "\n",
          UsageText()));
    }
  }
  return Status::OK();
}

Result<double> ParseDouble(const std::string& text, const std::string& flag) {
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrCat("flag ", flag, " expects a number, got \"", text, "\""));
  }
  // strtod reports overflow via ERANGE (returning ±HUGE_VAL): a silently
  // saturated threshold is worse than an error. Underflow to a denormal
  // or zero also sets ERANGE but is a faithful rounding, so only the
  // overflow case is rejected.
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    return Status::InvalidArgument(
        StrCat("flag ", flag, " value \"", text, "\" overflows a double"));
  }
  return value;
}

Result<int64_t> ParseInt(const std::string& text, const std::string& flag) {
  char* end = nullptr;
  errno = 0;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrCat("flag ", flag, " expects an integer, got \"", text, "\""));
  }
  // Without this check strtoll silently clamps e.g.
  // --t=99999999999999999999 to LLONG_MAX.
  if (errno == ERANGE) {
    return Status::InvalidArgument(StrCat(
        "flag ", flag, " value \"", text, "\" is out of the 64-bit range"));
  }
  return static_cast<int64_t>(value);
}

Result<std::vector<double>> ParseProbs(const std::string& text) {
  std::vector<double> probs;
  for (const std::string& part : StrSplit(text, ',')) {
    SIGSUB_ASSIGN_OR_RETURN(double p, ParseDouble(part, "--probs"));
    probs.push_back(p);
  }
  return probs;
}

/// Trims trailing newlines/whitespace, which files (and piped stdin)
/// routinely carry. Shared by file and stdin ingestion so the two can
/// never diverge.
void TrimTrailingWhitespace(std::string* text) {
  while (!text->empty() &&
         (text->back() == '\n' || text->back() == '\r' ||
          text->back() == ' ' || text->back() == '\t')) {
    text->pop_back();
  }
}

Result<std::string> LoadInput(const CliOptions& options) {
  if (options.has_input_text) return options.input_text;
  std::ifstream in(options.input_path);
  if (!in) {
    return Status::IOError(
        StrCat("cannot open '", options.input_path, "'"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  TrimTrailingWhitespace(&text);
  return text;
}

/// Resolves the threshold commands' X² cutoff from --alpha0 / --pvalue
/// (the p-value takes precedence and prints its derivation banner).
/// `what` names the failing command in the error.
Result<double> ResolveAlpha0(const CliOptions& options, int k,
                             std::ostream& out, const char* what) {
  double alpha0 = options.alpha0;
  if (options.pvalue > 0.0) {
    alpha0 = stats::ChiSquareThresholdForPValue(options.pvalue, k);
    out << "alpha0 = " << StrFormat("%.4f", alpha0) << " (p-value "
        << StrFormat("%.3g", options.pvalue) << ")\n";
  }
  if (alpha0 < 0.0) {
    return Status::InvalidArgument(
        StrCat(what, " needs --alpha0 or --pvalue"));
  }
  return alpha0;
}

/// Loads the corpus for the corpus-shaped commands (`batch`, `query`):
/// a lines/CSV file, or (query only) a single --string record.
Result<engine::Corpus> LoadCorpus(const CliOptions& options) {
  if (options.has_input_text) {
    return engine::Corpus::FromStrings({options.input_text},
                                       options.alphabet);
  }
  if (options.format == "csv") {
    return engine::Corpus::FromCsvColumn(options.input_path, options.column,
                                         options.csv_header,
                                         options.alphabet);
  }
  return engine::Corpus::FromLines(options.input_path, options.alphabet);
}

engine::EngineOptions EngineOptionsFrom(const CliOptions& options) {
  engine::EngineOptions engine_options;
  engine_options.num_threads = options.threads;
  engine_options.cache_capacity = static_cast<size_t>(options.cache);
  engine_options.shard_min_sequence = options.shard_min;
  engine_options.x2_dispatch = options.x2_dispatch;
  return engine_options;
}

/// Executes the `batch` command: the job flags are spelled into one
/// serialized query template, routed through api::ParseQuery (the same
/// parser the `query` command uses — the flags cannot drift from the
/// query grammar), replicated per record, and fanned across the engine.
Result<std::string> RunBatch(const CliOptions& options) {
  SIGSUB_ASSIGN_OR_RETURN(engine::Corpus corpus, LoadCorpus(options));
  SIGSUB_ASSIGN_OR_RETURN(engine::JobKind kind,
                          engine::ParseJobKind(options.job));
  const int k = corpus.alphabet().size();

  // Range checks the user expressed as flags are reported in flag
  // vocabulary here; only value-level model validation (normalization,
  // positivity) is left to the engine's query-layer messages.
  if (!options.probs.empty() &&
      static_cast<int>(options.probs.size()) != k) {
    return Status::InvalidArgument(
        StrCat("--probs has ", options.probs.size(),
               " probabilities but the corpus alphabet has ", k,
               " symbols"));
  }
  if ((kind == engine::JobKind::kTopT ||
       kind == engine::JobKind::kTopDisjoint) &&
      options.t < 1) {
    return Status::InvalidArgument(
        StrCat("--t must be >= 1, got ", options.t));
  }
  if ((kind == engine::JobKind::kMinLength ||
       kind == engine::JobKind::kTopDisjoint) &&
      options.min_length < 1) {
    return Status::InvalidArgument(
        StrCat("--min-length must be >= 1, got ", options.min_length));
  }
  std::ostringstream out;
  std::string template_text;
  switch (kind) {
    case engine::JobKind::kMss:
      template_text = "mss";
      break;
    case engine::JobKind::kTopT:
      template_text = StrCat("topt:t=", options.t);
      break;
    case engine::JobKind::kTopDisjoint:
      template_text = StrCat("disjoint:t=", options.t,
                             ",min_length=", options.min_length);
      break;
    case engine::JobKind::kThreshold: {
      // Cutoff precedence: --alpha-p (engine-side χ²(k−1) critical
      // value) wins over --pvalue/--alpha0 (CLI-side resolution). A
      // significance level is the principled spelling; a raw X² cutoff
      // must not silently override it.
      if (options.alpha_p >= 0.0) {
        template_text = StrCat("threshold:alpha_p=",
                               StrFormat("%.17g", options.alpha_p),
                               ",max_matches=0");
        break;
      }
      SIGSUB_ASSIGN_OR_RETURN(
          double alpha0,
          ResolveAlpha0(options, k, out, "batch --job=threshold"));
      // Count + best only; rows stay one-per-record.
      template_text = StrCat("threshold:alpha0=",
                             StrFormat("%.17g", alpha0), ",max_matches=0");
      break;
    }
    case engine::JobKind::kMinLength:
      template_text = StrCat("minlen:min_length=", options.min_length);
      break;
  }
  SIGSUB_ASSIGN_OR_RETURN(api::QuerySpec query_template,
                          api::ParseQuery(template_text));
  if (!options.probs.empty()) {
    query_template.model = api::ModelSpec::Multinomial(options.probs);
  }

  engine::Engine engine(EngineOptionsFrom(options));
  std::vector<api::QuerySpec> queries(static_cast<size_t>(corpus.size()),
                                      query_template);
  for (int64_t i = 0; i < corpus.size(); ++i) {
    queries[static_cast<size_t>(i)].sequence_index = i;
  }
  SIGSUB_ASSIGN_OR_RETURN(std::vector<api::QueryResult> results,
                          engine.ExecuteQueries(corpus, queries));

  out << "corpus: " << corpus.size() << " records, k = " << k
      << ", job = " << api::QueryKindToString(query_template.kind())
      << ", threads = " << engine.num_threads() << "\n";

  if (kind == engine::JobKind::kThreshold) {
    io::TableWriter table(
        {"record", "n", "matches", "best_start", "best_end", "best_X2"});
    for (const api::QueryResult& result : results) {
      const core::Substring& best = result.best();
      bool any = result.match_count() > 0;
      table.AddRow({std::to_string(
                        corpus.source_index(result.sequence_index)),
                    std::to_string(corpus.sequence(result.sequence_index)
                                       .size()),
                    std::to_string(result.match_count()),
                    any ? std::to_string(best.start) : std::string("-"),
                    any ? std::to_string(best.end) : std::string("-"),
                    any ? StrFormat("%.4f", best.chi_square)
                        : std::string("-")});
    }
    out << table.Render();
  } else if (kind == engine::JobKind::kTopT ||
             kind == engine::JobKind::kTopDisjoint) {
    io::TableWriter table(
        {"record", "rank", "start", "end", "X2", "p-value"});
    for (const api::QueryResult& result : results) {
      std::span<const core::Substring> subs = result.substrings();
      if (subs.empty()) {
        // A record with no qualifying substring still gets a row, so it
        // cannot be mistaken for an unprocessed record.
        table.AddRow({std::to_string(
                          corpus.source_index(result.sequence_index)),
                      "-", "-", "-", "-", "-"});
        continue;
      }
      for (size_t rank = 0; rank < subs.size(); ++rank) {
        const core::Substring& sub = subs[rank];
        table.AddRow({std::to_string(
                          corpus.source_index(result.sequence_index)),
                      std::to_string(rank + 1), std::to_string(sub.start),
                      std::to_string(sub.end),
                      StrFormat("%.4f", sub.chi_square),
                      StrFormat("%.4g",
                                core::SubstringPValue(sub.chi_square, k))});
      }
    }
    out << table.Render();
  } else {
    io::TableWriter table(
        {"record", "n", "start", "end", "length", "X2", "p-value"});
    for (const api::QueryResult& result : results) {
      const core::Substring& best = result.best();
      bool any = best.length() > 0;  // minlen floor can exceed a record.
      table.AddRow({std::to_string(
                        corpus.source_index(result.sequence_index)),
                    std::to_string(corpus.sequence(result.sequence_index)
                                       .size()),
                    any ? std::to_string(best.start) : std::string("-"),
                    any ? std::to_string(best.end) : std::string("-"),
                    any ? std::to_string(best.length()) : std::string("-"),
                    any ? StrFormat("%.4f", best.chi_square)
                        : std::string("-"),
                    any ? StrFormat("%.4g",
                                    core::SubstringPValue(best.chi_square, k))
                        : std::string("-")});
    }
    out << table.Render();
  }

  engine::CacheStats cache_stats = engine.cache_stats();
  out << "cache: " << cache_stats.hits << " hits, " << cache_stats.misses
      << " misses (" << engine.cache_size() << " entries)\n";
  if (options.verbose) {
    // The same snapshot + rendering the server's STATS endpoint uses
    // (engine/engine_stats.h) — one vocabulary for both surfaces.
    out << "stats: "
        << engine::FormatEngineStats(
               engine::CollectEngineStats(&engine, nullptr))
        << "\n";
  }
  return out.str();
}

/// Executes the `query` command: collect the serialized queries from
/// repeatable --query= flags and/or a --queries-file, parse them with
/// api::ParseQuery, execute the batch natively, and render one table row
/// per materialized substring.
Result<std::string> RunQuery(const CliOptions& options) {
  SIGSUB_ASSIGN_OR_RETURN(engine::Corpus corpus, LoadCorpus(options));

  std::vector<std::string> texts = options.queries;
  if (!options.queries_file.empty()) {
    std::ifstream in(options.queries_file);
    if (!in) {
      return Status::IOError(
          StrCat("cannot open '", options.queries_file, "'"));
    }
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      std::string_view trimmed = line;
      while (!trimmed.empty() && (trimmed.front() == ' ' ||
                                  trimmed.front() == '\t')) {
        trimmed.remove_prefix(1);
      }
      if (trimmed.empty() || trimmed.front() == '#') continue;
      texts.emplace_back(trimmed);
    }
  }
  if (texts.empty()) {
    return Status::InvalidArgument(
        "query needs at least one --query=SPEC or a non-empty "
        "--queries-file");
  }

  std::vector<api::QuerySpec> specs;
  specs.reserve(texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    Result<api::QuerySpec> spec = api::ParseQuery(texts[i]);
    if (!spec.ok()) {
      return Status::InvalidArgument(StrCat("query ", i, " \"", texts[i],
                                            "\": ",
                                            spec.status().message()));
    }
    specs.push_back(std::move(spec).value());
  }

  engine::Engine engine(EngineOptionsFrom(options));
  SIGSUB_ASSIGN_OR_RETURN(std::vector<api::QueryResult> results,
                          engine.ExecuteQueries(corpus, specs));

  const int k = corpus.alphabet().size();
  std::ostringstream out;
  out << "corpus: " << corpus.size() << " records, k = " << k
      << ", queries = " << specs.size()
      << ", threads = " << engine.num_threads() << "\n";

  io::TableWriter table({"query", "kind", "record", "matches", "rank",
                         "start", "end", "length", "X2", "p-value"});
  for (size_t i = 0; i < results.size(); ++i) {
    const api::QueryResult& result = results[i];
    // Markov-statistic MSS converges to χ²(k(k−1)), not χ²(k−1).
    const bool markov =
        specs[i].model.kind == api::ModelKind::kMarkov;
    const int dof = markov ? k * (k - 1) : k - 1;
    const stats::ChiSquaredDistribution dist(dof);
    const std::string query_id = std::to_string(i);
    const std::string kind_name(api::QueryKindToString(result.kind));
    const std::string record = std::to_string(
        corpus.source_index(result.sequence_index));
    const std::string matches = std::to_string(result.match_count());
    std::span<const core::Substring> subs = result.substrings();
    if (subs.empty()) {
      table.AddRow({query_id, kind_name, record, matches, "-", "-", "-",
                    "-", "-", "-"});
      continue;
    }
    for (size_t rank = 0; rank < subs.size(); ++rank) {
      const core::Substring& sub = subs[rank];
      table.AddRow({query_id, kind_name, record, matches,
                    std::to_string(rank + 1), std::to_string(sub.start),
                    std::to_string(sub.end), std::to_string(sub.length()),
                    StrFormat("%.4f", sub.chi_square),
                    StrFormat("%.4g", dist.Sf(sub.chi_square))});
    }
  }
  out << table.Render();

  engine::CacheStats cache_stats = engine.cache_stats();
  out << "cache: " << cache_stats.hits << " hits, " << cache_stats.misses
      << " misses (" << engine.cache_size() << " entries)\n";
  return out.str();
}

/// Executes the `substrings` command: all-substrings mining over one
/// record. The record is either memory-mapped in place (--mmap: no decoded
/// in-RAM copy, the suffix index reads through the byte→symbol table) or
/// loaded like the other single-string commands. The default path routes a
/// serialized substrings query through the engine (shared validation,
/// result cache); --positions calls the suffix scan directly, since
/// occurrence positions are computed on request and never cached.
Result<std::string> RunSubstrings(const CliOptions& options) {
  std::string text;  // Backing for non-mapped corpora; also rendering.
  Result<engine::Corpus> loaded =
      options.mmap
          ? engine::Corpus::FromMappedFile(options.input_path,
                                           options.alphabet)
          : [&]() -> Result<engine::Corpus> {
              SIGSUB_ASSIGN_OR_RETURN(text, LoadInput(options));
              if (text.empty()) {
                return Status::InvalidArgument("input string is empty");
              }
              return engine::Corpus::FromStrings({text}, options.alphabet);
            }();
  SIGSUB_RETURN_IF_ERROR(loaded.status());
  engine::Corpus corpus = std::move(loaded).value();
  const int k = corpus.alphabet().size();
  if (!options.probs.empty() &&
      static_cast<int>(options.probs.size()) != k) {
    return Status::InvalidArgument(
        StrCat("--probs has ", options.probs.size(),
               " probabilities but the record alphabet has ", k,
               " symbols"));
  }
  const std::string_view record =
      options.mmap
          ? std::string_view(
                reinterpret_cast<const char*>(corpus.mapped_record().data()),
                corpus.mapped_record().size())
          : std::string_view(text);

  std::ostringstream out;
  out << "n = " << record.size() << ", k = " << k
      << (options.mmap ? ", mapped" : "") << "\n";

  // Rendered substring text column; long substrings are elided, the
  // start/end columns always identify them exactly.
  auto render_text = [&record](const core::Substring& sub) {
    constexpr int64_t kMaxShown = 24;
    if (sub.length() <= kMaxShown) {
      return StrCat("\"",
                    std::string(record.substr(
                        static_cast<size_t>(sub.start),
                        static_cast<size_t>(sub.length()))),
                    "\"");
    }
    return StrCat("\"",
                  std::string(record.substr(static_cast<size_t>(sub.start),
                                            kMaxShown)),
                  "\"... (", sub.length(), " symbols)");
  };
  io::TableWriter table({"rank", "start", "end", "length", "count", "X2",
                         "p-value", "substring"});
  auto add_row = [&](size_t rank, const core::Substring& sub, int64_t count,
                     double p_value) {
    table.AddRow({std::to_string(rank + 1), std::to_string(sub.start),
                  std::to_string(sub.end), std::to_string(sub.length()),
                  std::to_string(count), StrFormat("%.4f", sub.chi_square),
                  StrFormat("%.4g", p_value), render_text(sub)});
  };

  if (options.positions) {
    // Direct core call: positions are collected during the sweep and are
    // not part of the cached result shape.
    std::vector<double> probs = options.probs;
    if (probs.empty()) probs.assign(k, 1.0 / k);
    SIGSUB_ASSIGN_OR_RETURN(core::ChiSquareContext context,
                            core::ChiSquareContext::Make(std::move(probs)));
    core::SuffixScanOptions scan_options;
    scan_options.top_n = options.top;
    scan_options.min_length = options.min_length;
    scan_options.max_length = options.max_length;
    scan_options.min_count = options.min_count;
    scan_options.maximal_only = !options.all_substrings;
    scan_options.collect_positions = true;
    // The same alpha resolution the engine applies: a p-value converts
    // through the χ²(k−1) critical value and wins over a raw X² cutoff.
    if (options.alpha_p > 0.0) {
      scan_options.min_x2 =
          stats::ChiSquaredDistribution(k - 1).CriticalValue(options.alpha_p);
    } else if (options.alpha0 >= 0.0) {
      scan_options.min_x2 = options.alpha0;
    }
    SIGSUB_ASSIGN_OR_RETURN(
        core::SuffixScan scan,
        options.mmap
            ? core::SuffixScan::BuildMapped(corpus.mapped_record(),
                                            corpus.decode_table(), k)
            : core::SuffixScan::Build(corpus.sequence(0).symbols(), k));
    SIGSUB_ASSIGN_OR_RETURN(core::SuffixScanResult result,
                            scan.Scan(context, scan_options));
    out << result.match_count << " matching substrings";
    if (result.match_count >
        static_cast<int64_t>(result.classes.size())) {
      out << " (showing " << result.classes.size() << ")";
    }
    out << "\n";
    for (size_t i = 0; i < result.classes.size(); ++i) {
      add_row(i, result.classes[i].substring, result.classes[i].count,
              result.classes[i].p_value);
    }
    if (table.row_count() > 0) out << table.Render();
    for (size_t i = 0; i < result.positions.size(); ++i) {
      out << "positions " << (i + 1) << ":";
      for (int64_t pos : result.positions[i]) out << " " << pos;
      out << "\n";
    }
    out << "classes: " << result.stats.classes_enumerated
        << " enumerated, " << result.stats.candidates_scored
        << " candidates scored; index: " << result.stats.index_bytes
        << " bytes (peak " << result.stats.peak_index_bytes << ")\n";
    return out.str();
  }

  // Engine path: the flags spell one serialized substrings query (the
  // same grammar the query command and the wire protocol accept), so the
  // CLI cannot drift from the query surface — and repeats hit the result
  // cache.
  std::string query_text = StrCat(
      "substrings:top=", options.top, ",min_length=", options.min_length,
      ",max_length=", options.max_length, ",min_count=", options.min_count,
      ",maximal=", options.all_substrings ? 0 : 1);
  if (options.alpha_p > 0.0) {
    query_text += StrCat(",alpha_p=", StrFormat("%.17g", options.alpha_p));
  } else if (options.alpha0 >= 0.0) {
    query_text += StrCat(",alpha0=", StrFormat("%.17g", options.alpha0));
  }
  SIGSUB_ASSIGN_OR_RETURN(api::QuerySpec spec, api::ParseQuery(query_text));
  if (!options.probs.empty()) {
    spec.model = api::ModelSpec::Multinomial(options.probs);
  }
  engine::Engine engine(EngineOptionsFrom(options));
  SIGSUB_ASSIGN_OR_RETURN(std::vector<api::QueryResult> results,
                          engine.ExecuteQueries(corpus, {spec}));
  const auto& payload =
      std::get<api::SubstringsPayload>(results[0].payload);
  out << payload.match_count << " matching substrings";
  if (payload.match_count > static_cast<int64_t>(payload.ranked.size())) {
    out << " (showing " << payload.ranked.size() << ")";
  }
  out << "\n";
  for (size_t i = 0; i < payload.ranked.size(); ++i) {
    add_row(i, payload.ranked[i], payload.counts[i], payload.p_values[i]);
  }
  if (table.row_count() > 0) out << table.Render();
  engine::CacheStats cache_stats = engine.cache_stats();
  out << "cache: " << cache_stats.hits << " hits, " << cache_stats.misses
      << " misses (" << engine.cache_size() << " entries)\n";
  return out.str();
}

/// The effective fused-kernel selection, reported when the user passed
/// --x2-dispatch explicitly. A `simd` request on a host without AVX2
/// would otherwise degrade to scalar silently (x2_dispatch.h documents
/// the fallback); the report says so in so many words.
std::string DispatchReport(core::X2Dispatch requested) {
  const bool simd = core::SimdAvailable();
  switch (requested) {
    case core::X2Dispatch::kScalar:
      return "x2 dispatch: scalar (bit-reproducible)\n";
    case core::X2Dispatch::kSimd:
      if (simd) return "x2 dispatch: simd (AVX2 active)\n";
      return "x2 dispatch: scalar — WARNING: simd requested but AVX2 is "
             "unavailable on this host; using the scalar kernel\n";
    case core::X2Dispatch::kAuto:
      return simd ? "x2 dispatch: auto (simd, AVX2 available)\n"
                  : "x2 dispatch: auto (scalar; AVX2 unavailable)\n";
  }
  return "";
}

/// Executes the `stream` command: treat the input as one symbol stream,
/// ingest it in --chunk-sized AppendChunk calls through an
/// engine::StreamManager, and render the alarm log plus the calibration
/// summary.
Result<std::string> RunStream(const CliOptions& options) {
  std::string text;
  if (options.input_path == "-") {
    // Raw read(2) with EINTR retry (posix_io.h), not std::cin.rdbuf(): an
    // iostream read aborted by a signal mid-pipe silently truncates the
    // stream, and a truncated symbol stream is a wrong answer, not an
    // error.
    SIGSUB_ASSIGN_OR_RETURN(text, ReadFdToEof(0));
    TrimTrailingWhitespace(&text);
  } else {
    SIGSUB_ASSIGN_OR_RETURN(text, LoadInput(options));
  }
  if (text.empty()) {
    return Status::InvalidArgument("stream input is empty");
  }
  if (options.alpha <= 0.0 || options.alpha >= 1.0) {
    return Status::InvalidArgument(
        StrCat("--alpha must be in (0, 1), got ", options.alpha));
  }
  if (options.max_window < 1) {
    return Status::InvalidArgument(
        StrCat("--max-window must be >= 1, got ", options.max_window));
  }
  if (options.chunk < 1) {
    return Status::InvalidArgument(
        StrCat("--chunk must be >= 1, got ", options.chunk));
  }

  std::string alphabet_chars = options.alphabet;
  if (alphabet_chars.empty()) {
    alphabet_chars = engine::Corpus::InferAlphabetChars({text});
  }
  SIGSUB_ASSIGN_OR_RETURN(seq::Alphabet alphabet,
                          seq::Alphabet::FromCharacters(alphabet_chars));
  SIGSUB_ASSIGN_OR_RETURN(seq::Sequence sequence,
                          seq::Sequence::FromString(alphabet, text));
  std::vector<double> probs = options.probs;
  if (probs.empty()) {
    probs.assign(alphabet.size(), 1.0 / alphabet.size());
  }

  engine::StreamManagerOptions manager_options;
  manager_options.num_threads = 1;
  manager_options.max_alarms_per_stream = 1024;
  manager_options.x2_dispatch = options.x2_dispatch;
  engine::StreamManager manager(manager_options);

  core::StreamingDetector::Options detector_options;
  detector_options.alpha = options.alpha;
  detector_options.max_window = options.max_window;
  const std::string name =
      options.has_input_text
          ? std::string("string")
          : (options.input_path == "-" ? std::string("stdin")
                                       : options.input_path);
  SIGSUB_RETURN_IF_ERROR(manager.CreateStream(name, probs, detector_options));

  std::span<const uint8_t> symbols = sequence.symbols();
  for (size_t offset = 0; offset < symbols.size();
       offset += static_cast<size_t>(options.chunk)) {
    const size_t chunk = std::min(static_cast<size_t>(options.chunk),
                                  symbols.size() - offset);
    SIGSUB_RETURN_IF_ERROR(
        manager.Append(name, symbols.subspan(offset, chunk)).status());
  }
  SIGSUB_ASSIGN_OR_RETURN(engine::StreamSnapshot snapshot,
                          manager.Snapshot(name));

  const int k = alphabet.size();
  std::ostringstream out;
  out << "stream \"" << name << "\": n = " << snapshot.position
      << ", k = " << k << ", chunk = " << options.chunk << "\n";
  out << "scales:";
  for (int64_t scale : snapshot.scales) out << " " << scale;
  out << "\n";
  out << "per-scale X2 threshold = "
      << StrFormat("%.4f", snapshot.thresholds.empty()
                               ? 0.0
                               : snapshot.thresholds.front())
      << " (alpha " << StrFormat("%.3g", options.alpha)
      << ", Sidak over " << snapshot.scales.size() << " scales, chi2(k-1))\n";

  out << "alarms: " << snapshot.alarms_total;
  if (snapshot.alarms_dropped > 0) {
    out << " (showing last " << snapshot.recent_alarms.size() << ")";
  }
  out << "\n";
  if (!snapshot.recent_alarms.empty()) {
    io::TableWriter table({"end", "length", "X2", "p-value"});
    for (const core::StreamingDetector::Alarm& alarm :
         snapshot.recent_alarms) {
      table.AddRow({std::to_string(alarm.end), std::to_string(alarm.length),
                    StrFormat("%.4f", alarm.chi_square),
                    StrFormat("%.4g", alarm.p_value)});
    }
    out << table.Render();
  }
  return out.str();
}

/// The live server behind the `serve` command, latched for the signal
/// handler. RequestDrain is async-signal-safe (one atomic store + one
/// pipe write), so the handler may call it directly.
std::atomic<server::Server*> g_serve_instance{nullptr};

void HandleServeSignal(int /*signum*/) {
  server::Server* instance = g_serve_instance.load(std::memory_order_acquire);
  if (instance != nullptr) instance->RequestDrain();
}

/// Executes the `serve` command: load the corpus, start sigsubd, print
/// the listening banner immediately (scripts need the ephemeral port
/// before the daemon exits), then block until a SIGTERM/SIGINT-initiated
/// drain — or self-drain after --max-runtime-ms. The returned report is
/// the post-drain counter summary.
Result<std::string> RunServe(const CliOptions& options) {
  SIGSUB_ASSIGN_OR_RETURN(engine::Corpus corpus, LoadCorpus(options));
  server::ServerOptions server_options;
  server_options.host = options.host;
  server_options.port = static_cast<int>(options.port);
  server_options.engine_threads = options.threads;
  server_options.cache_capacity = static_cast<size_t>(options.cache);
  server_options.shard_min_sequence = options.shard_min;
  server_options.x2_dispatch = options.x2_dispatch;
  server_options.max_connections = static_cast<int>(options.max_clients);
  server_options.max_queue = static_cast<size_t>(options.max_queue);
  server_options.max_inflight_per_client =
      static_cast<int>(options.max_inflight);
  server_options.idle_timeout_ms = options.idle_timeout_ms;
  server_options.state_dir = options.state_dir;
  SIGSUB_ASSIGN_OR_RETURN(server_options.fsync_policy,
                          persist::ParseFsyncPolicy(options.fsync));
  server_options.snapshot_interval_ms = options.snapshot_interval_ms;

  server::Server daemon(std::move(corpus), server_options);
  SIGSUB_RETURN_IF_ERROR(daemon.Start());
  g_serve_instance.store(&daemon, std::memory_order_release);
  std::signal(SIGTERM, HandleServeSignal);
  std::signal(SIGINT, HandleServeSignal);
  std::cout << "sigsubd listening on " << options.host << ":"
            << daemon.port() << "\n"
            << std::flush;
  if (!options.state_dir.empty()) {
    // The recovery line is part of the startup banner: operators (and
    // the crash-recovery tests) read it to confirm replay happened.
    const persist::RecoveryStats& r = daemon.recovery();
    std::cout << "sigsubd recovered: snapshot="
              << (r.snapshot_loaded ? 1 : 0) << " streams="
              << r.streams_restored << " journal_applied="
              << r.journal_records_applied << " journal_skipped="
              << r.journal_records_skipped << " journal_failed="
              << r.journal_records_failed << " truncated_bytes="
              << r.journal_bytes_truncated << " cache_entries="
              << r.cache_entries_loaded << "\n"
              << std::flush;
  }

  if (options.max_runtime_ms > 0) {
    const int64_t deadline = MonotonicMillis() + options.max_runtime_ms;
    while (!daemon.draining() && MonotonicMillis() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    daemon.RequestDrain();
  }
  daemon.Join();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_serve_instance.store(nullptr, std::memory_order_release);

  server::ServerStats stats = daemon.stats();
  return StrCat("sigsubd drained: accepted=", stats.connections_accepted,
                " admitted=", stats.requests_admitted,
                " shed_busy=", stats.shed_busy,
                " shed_quota=", stats.shed_quota,
                " shed_drain=", stats.shed_drain,
                " proto_errors=", stats.protocol_errors,
                " alarms_pushed=", stats.alarms_pushed, "\n");
}

/// Executes the `client` command: send each protocol line in order,
/// print its reply (pushed ALARM lines pass through without consuming a
/// reply slot), then optionally linger for late pushes.
Result<std::string> RunClient(const CliOptions& options) {
  std::vector<std::string> commands = options.sends;
  if (!options.input_path.empty()) {
    std::string script;
    if (options.input_path == "-") {
      SIGSUB_ASSIGN_OR_RETURN(script, ReadFdToEof(0));
    } else {
      std::ifstream in(options.input_path);
      if (!in) {
        return Status::IOError(
            StrCat("cannot open '", options.input_path, "'"));
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      script = buffer.str();
    }
    for (const std::string& raw : StrSplit(script, '\n')) {
      std::string line = raw;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line.front() == '#') continue;
      commands.push_back(std::move(line));
    }
  }
  if (commands.empty()) {
    return Status::InvalidArgument(
        "client script is empty: nothing to send");
  }

  server::RetryPolicy retry;
  retry.retries = static_cast<int>(options.retries);
  retry.backoff_ms = options.backoff_ms;
  retry.timeout_ms = options.timeout_ms;
  SIGSUB_ASSIGN_OR_RETURN(
      server::LineClient connection,
      server::LineClient::ConnectWithRetry(
          options.host, static_cast<int>(options.port), retry));
  std::ostringstream out;
  for (const std::string& command : commands) {
    SIGSUB_RETURN_IF_ERROR(connection.SendLine(command));
    for (;;) {
      SIGSUB_ASSIGN_OR_RETURN(std::string reply,
                              connection.ReadLine(options.timeout_ms));
      out << reply << "\n";
      if (reply.rfind("ALARM ", 0) != 0) break;
    }
  }
  if (options.linger_ms > 0) {
    const int64_t deadline = MonotonicMillis() + options.linger_ms;
    for (;;) {
      int64_t remaining = deadline - MonotonicMillis();
      if (remaining <= 0) break;
      Result<std::string> line = connection.ReadLine(remaining);
      if (!line.ok()) break;  // Timeout or server-side close ends lingering.
      out << *line << "\n";
    }
  }
  return out.str();
}

std::string RenderSubstring(const core::Substring& sub, int k,
                            const std::string& text) {
  io::TableWriter table({"start", "end", "length", "X2", "p-value"});
  table.AddRow({std::to_string(sub.start), std::to_string(sub.end),
                std::to_string(sub.length()),
                StrFormat("%.4f", sub.chi_square),
                StrFormat("%.4g", core::SubstringPValue(sub.chi_square, k))});
  std::string out = table.Render();
  if (sub.length() > 0 && sub.length() <= 64) {
    out += StrCat("text: \"",
                  text.substr(static_cast<size_t>(sub.start),
                              static_cast<size_t>(sub.length())),
                  "\"\n");
  }
  return out;
}

}  // namespace

std::string UsageText() {
  return
      "usage: sigsub_cli <command> [--flag=value ...]\n"
      "\n"
      "commands:\n"
      "  mss        most significant substring (Problem 1); --threads\n"
      "  topt       top-t substrings (Problem 2); --t, --disjoint\n"
      "  threshold  substrings above a threshold (Problem 3); --alpha0 or "
      "--pvalue\n"
      "  minlen     MSS above a length floor (Problem 4); --min-length\n"
      "  score      score one substring; --start, --end\n"
      "  substrings all statistically significant distinct substrings of\n"
      "             one record, each with its occurrence count, X2 and\n"
      "             p-value (suffix-array scan); --top (0 = all matches),\n"
      "             --min-length, --max-length, --min-count, --alpha0 or\n"
      "             --alpha-p, --all (every distinct substring, not just\n"
      "             class-maximal ones; needs --max-length), --positions\n"
      "             (list occurrence positions), --mmap (memory-map\n"
      "             --input and mine it in place, no decoded copy)\n"
      "  batch      mine a whole corpus (one record per line, or a CSV\n"
      "             column with --format=csv); --job=mss|topt|disjoint|\n"
      "             threshold|minlen, --threads, --cache, plus the job's\n"
      "             own flags (--t, --min-length, --alpha0, --pvalue,\n"
      "             --alpha-p; --alpha-p is an engine-side p-value cutoff\n"
      "             and wins over --alpha0/--pvalue when several are set)\n"
      "  query      run serialized queries against a corpus: repeatable\n"
      "             --query=kind:key=val,... (kinds mss|topt|disjoint|\n"
      "             threshold|minlen|lenbound|arlm|agmm|blocked; JSON\n"
      "             accepted too) and/or --queries-file=PATH (one per\n"
      "             line, # comments); corpus from --input or --string;\n"
      "             models live inside each query (model=uniform|\n"
      "             probs(p1;p2;...)|markov1(t11;...|i1;...))\n"
      "  stream     online monitoring: ingest the input as one symbol\n"
      "             stream in chunks and report calibrated suffix-window\n"
      "             alarms; --alpha, --max-window, --chunk (--input=-\n"
      "             reads stdin)\n"
      "  serve      run sigsubd, the mining daemon, over the --input\n"
      "             corpus: newline-delimited QUERY/STREAM.*/STATS\n"
      "             protocol over TCP; --port (0 = ephemeral), --host,\n"
      "             --threads, --max-clients, --max-queue, --max-inflight,\n"
      "             --idle-timeout-ms, --max-runtime-ms (0 = until\n"
      "             SIGTERM); drains gracefully on SIGTERM/SIGINT;\n"
      "             --state-dir=PATH makes stream state crash-safe\n"
      "             (journal + snapshots; replayed on restart), with\n"
      "             --fsync=always|none and --snapshot-interval-ms=N\n"
      "  client     send protocol lines to a running sigsubd and print\n"
      "             the replies; --host, --port, --send=CMD (repeatable),\n"
      "             --input=SCRIPT (- reads stdin), --timeout-ms,\n"
      "             --linger-ms (keep reading pushed ALARM lines),\n"
      "             --retries=N --backoff-ms=N (jittered exponential\n"
      "             connect retry)\n"
      "\n"
      "input:\n"
      "  --string=TEXT | --input=PATH   the string to mine (required;\n"
      "                                 batch accepts only --input)\n"
      "  --alphabet=CHARS               default: distinct input characters\n"
      "  --probs=p1,p2,...              default: uniform\n"
      "  --x2-dispatch=auto|scalar|simd fused X2 kernel selection\n"
      "                                 (scalar = bit-reproducible audit\n"
      "                                 path; default auto)\n"
      "\n"
      "batch corpus:\n"
      "  --format=lines|csv             corpus layout (default lines)\n"
      "  --column=N --csv-header        CSV column selection\n"
      "  --threads=N --cache=N          worker threads / cache entries\n"
      "  --shard-min=N                  split an MSS job across workers\n"
      "                                 when the record has >= N symbols\n"
      "                                 (default 2^20; 0 disables)\n"
      "\n"
      "flags that a command does not consume are rejected\n";
}

Result<CliOptions> ParseArgs(const std::vector<std::string>& args) {
  if (args.empty()) {
    return Status::InvalidArgument(StrCat("missing command\n", UsageText()));
  }
  CliOptions options;
  options.command = args[0];
  bool known = false;
  for (const char* command : kCommands) {
    if (options.command == command) known = true;
  }
  if (!known) {
    return Status::InvalidArgument(
        StrCat("unknown command \"", options.command, "\"\n", UsageText()));
  }
  std::vector<std::string> seen_flags;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument(
          StrCat("expected --flag=value, got \"", arg, "\""));
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    std::string name = body.substr(0, eq);
    std::string value =
        eq == std::string::npos ? std::string() : body.substr(eq + 1);
    seen_flags.push_back(name);
    if (name == "string") {
      options.input_text = value;
      options.has_input_text = true;
    } else if (name == "input") {
      options.input_path = value;
    } else if (name == "alphabet") {
      options.alphabet = value;
    } else if (name == "probs") {
      SIGSUB_ASSIGN_OR_RETURN(options.probs, ParseProbs(value));
    } else if (name == "t") {
      SIGSUB_ASSIGN_OR_RETURN(options.t, ParseInt(value, "--t"));
    } else if (name == "disjoint") {
      if (!value.empty()) {
        return Status::InvalidArgument(
            "flag --disjoint does not take a value");
      }
      options.disjoint = true;
    } else if (name == "alpha0") {
      SIGSUB_ASSIGN_OR_RETURN(options.alpha0, ParseDouble(value, "--alpha0"));
    } else if (name == "pvalue") {
      SIGSUB_ASSIGN_OR_RETURN(options.pvalue, ParseDouble(value, "--pvalue"));
    } else if (name == "alpha-p") {
      SIGSUB_ASSIGN_OR_RETURN(options.alpha_p,
                              ParseDouble(value, "--alpha-p"));
    } else if (name == "query") {
      options.queries.push_back(value);
    } else if (name == "queries-file") {
      options.queries_file = value;
    } else if (name == "min-length") {
      SIGSUB_ASSIGN_OR_RETURN(options.min_length,
                              ParseInt(value, "--min-length"));
    } else if (name == "top") {
      SIGSUB_ASSIGN_OR_RETURN(options.top, ParseInt(value, "--top"));
    } else if (name == "max-length") {
      SIGSUB_ASSIGN_OR_RETURN(options.max_length,
                              ParseInt(value, "--max-length"));
    } else if (name == "min-count") {
      SIGSUB_ASSIGN_OR_RETURN(options.min_count,
                              ParseInt(value, "--min-count"));
    } else if (name == "all") {
      if (!value.empty()) {
        return Status::InvalidArgument("flag --all does not take a value");
      }
      options.all_substrings = true;
    } else if (name == "positions") {
      if (!value.empty()) {
        return Status::InvalidArgument(
            "flag --positions does not take a value");
      }
      options.positions = true;
    } else if (name == "mmap") {
      if (!value.empty()) {
        return Status::InvalidArgument("flag --mmap does not take a value");
      }
      options.mmap = true;
    } else if (name == "start") {
      SIGSUB_ASSIGN_OR_RETURN(options.start, ParseInt(value, "--start"));
    } else if (name == "end") {
      SIGSUB_ASSIGN_OR_RETURN(options.end, ParseInt(value, "--end"));
    } else if (name == "threads") {
      SIGSUB_ASSIGN_OR_RETURN(int64_t threads,
                              ParseInt(value, "--threads"));
      options.threads = static_cast<int>(threads);
    } else if (name == "x2-dispatch") {
      if (!core::ParseX2Dispatch(value, &options.x2_dispatch)) {
        return Status::InvalidArgument(
            StrCat("flag --x2-dispatch expects auto, scalar, or simd, got \"",
                   value, "\""));
      }
      options.x2_dispatch_explicit = true;
    } else if (name == "alpha") {
      SIGSUB_ASSIGN_OR_RETURN(options.alpha, ParseDouble(value, "--alpha"));
    } else if (name == "max-window") {
      SIGSUB_ASSIGN_OR_RETURN(options.max_window,
                              ParseInt(value, "--max-window"));
    } else if (name == "chunk") {
      SIGSUB_ASSIGN_OR_RETURN(options.chunk, ParseInt(value, "--chunk"));
    } else if (name == "job") {
      options.job = value;
    } else if (name == "format") {
      options.format = value;
    } else if (name == "column") {
      SIGSUB_ASSIGN_OR_RETURN(options.column, ParseInt(value, "--column"));
    } else if (name == "csv-header") {
      if (!value.empty()) {
        // `--csv-header=false` must not silently enable header skipping.
        return Status::InvalidArgument(
            "flag --csv-header does not take a value");
      }
      options.csv_header = true;
    } else if (name == "cache") {
      SIGSUB_ASSIGN_OR_RETURN(options.cache, ParseInt(value, "--cache"));
    } else if (name == "shard-min") {
      SIGSUB_ASSIGN_OR_RETURN(options.shard_min,
                              ParseInt(value, "--shard-min"));
    } else if (name == "verbose") {
      if (!value.empty()) {
        return Status::InvalidArgument(
            "flag --verbose does not take a value");
      }
      options.verbose = true;
    } else if (name == "port") {
      SIGSUB_ASSIGN_OR_RETURN(options.port, ParseInt(value, "--port"));
    } else if (name == "host") {
      options.host = value;
    } else if (name == "max-clients") {
      SIGSUB_ASSIGN_OR_RETURN(options.max_clients,
                              ParseInt(value, "--max-clients"));
    } else if (name == "max-queue") {
      SIGSUB_ASSIGN_OR_RETURN(options.max_queue,
                              ParseInt(value, "--max-queue"));
    } else if (name == "max-inflight") {
      SIGSUB_ASSIGN_OR_RETURN(options.max_inflight,
                              ParseInt(value, "--max-inflight"));
    } else if (name == "idle-timeout-ms") {
      SIGSUB_ASSIGN_OR_RETURN(options.idle_timeout_ms,
                              ParseInt(value, "--idle-timeout-ms"));
    } else if (name == "max-runtime-ms") {
      SIGSUB_ASSIGN_OR_RETURN(options.max_runtime_ms,
                              ParseInt(value, "--max-runtime-ms"));
    } else if (name == "state-dir") {
      options.state_dir = value;
    } else if (name == "fsync") {
      options.fsync = value;
    } else if (name == "snapshot-interval-ms") {
      SIGSUB_ASSIGN_OR_RETURN(options.snapshot_interval_ms,
                              ParseInt(value, "--snapshot-interval-ms"));
    } else if (name == "send") {
      options.sends.push_back(value);
    } else if (name == "timeout-ms") {
      SIGSUB_ASSIGN_OR_RETURN(options.timeout_ms,
                              ParseInt(value, "--timeout-ms"));
    } else if (name == "linger-ms") {
      SIGSUB_ASSIGN_OR_RETURN(options.linger_ms,
                              ParseInt(value, "--linger-ms"));
    } else if (name == "retries") {
      SIGSUB_ASSIGN_OR_RETURN(options.retries,
                              ParseInt(value, "--retries"));
    } else if (name == "backoff-ms") {
      SIGSUB_ASSIGN_OR_RETURN(options.backoff_ms,
                              ParseInt(value, "--backoff-ms"));
    } else {
      return Status::InvalidArgument(
          StrCat("unknown flag --", name, "\n", UsageText()));
    }
  }
  SIGSUB_RETURN_IF_ERROR(
      ValidateFlagsForCommand(options.command, seen_flags));
  if (options.command == "topt" && !options.disjoint) {
    for (const std::string& flag : seen_flags) {
      if (flag == "min-length") {
        return Status::InvalidArgument(
            "flag --min-length is only consumed by topt with --disjoint");
      }
    }
  }
  if (options.command == "serve") {
    if (options.has_input_text) {
      return Status::InvalidArgument(
          "serve mines a corpus file; use --input=PATH, not --string");
    }
    if (options.input_path.empty()) {
      return Status::InvalidArgument(
          "serve requires --input=PATH (the corpus the daemon serves)");
    }
    if (!options.probs.empty()) {
      return Status::InvalidArgument(
          "flag --probs is not consumed by serve; stream models arrive "
          "with STREAM.CREATE and query models inside each QUERY");
    }
    if (options.format != "lines" && options.format != "csv") {
      return Status::InvalidArgument(StrCat(
          "--format must be lines or csv, got \"", options.format, "\""));
    }
    if (options.format != "csv") {
      for (const std::string& flag : seen_flags) {
        if (flag == "column" || flag == "csv-header") {
          return Status::InvalidArgument(
              StrCat("flag --", flag, " requires --format=csv"));
        }
      }
    }
    if (options.port < 0 || options.port > 65535) {
      return Status::InvalidArgument(
          StrCat("--port must be in [0, 65535], got ", options.port));
    }
    if (options.cache < 0) {
      return Status::InvalidArgument(
          StrCat("--cache must be >= 0, got ", options.cache));
    }
    if (options.max_clients < 1 || options.max_queue < 1 ||
        options.max_inflight < 1) {
      return Status::InvalidArgument(
          "--max-clients, --max-queue and --max-inflight must be >= 1");
    }
    // ParseFsyncPolicy validates the spelling; the result is recomputed
    // in RunServe (CliOptions carries plain strings).
    SIGSUB_RETURN_IF_ERROR(
        persist::ParseFsyncPolicy(options.fsync).status());
    if (options.snapshot_interval_ms < 0) {
      return Status::InvalidArgument(
          StrCat("--snapshot-interval-ms must be >= 0, got ",
                 options.snapshot_interval_ms));
    }
    if (options.state_dir.empty()) {
      for (const std::string& flag : seen_flags) {
        if (flag == "fsync" || flag == "snapshot-interval-ms") {
          return Status::InvalidArgument(
              StrCat("flag --", flag, " requires --state-dir"));
        }
      }
    }
    return options;
  }
  if (options.command == "client") {
    for (const std::string& flag : seen_flags) {
      if (flag == "string" || flag == "alphabet" || flag == "probs" ||
          flag == "x2-dispatch") {
        return Status::InvalidArgument(
            StrCat("flag --", flag, " is not consumed by client"));
      }
    }
    if (options.port < 1 || options.port > 65535) {
      return Status::InvalidArgument(
          StrCat("client requires --port in [1, 65535], got ",
                 options.port));
    }
    if (options.sends.empty() && options.input_path.empty()) {
      return Status::InvalidArgument(
          "client needs --send=CMD (repeatable) and/or --input=SCRIPT "
          "(one command per line; - reads stdin)");
    }
    if (options.timeout_ms < 1) {
      return Status::InvalidArgument(
          StrCat("--timeout-ms must be >= 1, got ", options.timeout_ms));
    }
    if (options.linger_ms < 0) {
      return Status::InvalidArgument(
          StrCat("--linger-ms must be >= 0, got ", options.linger_ms));
    }
    if (options.retries < 0) {
      return Status::InvalidArgument(
          StrCat("--retries must be >= 0, got ", options.retries));
    }
    if (options.backoff_ms < 1) {
      return Status::InvalidArgument(
          StrCat("--backoff-ms must be >= 1, got ", options.backoff_ms));
    }
    return options;
  }
  if (options.command == "batch" || options.command == "query") {
    if (options.command == "batch" && options.has_input_text) {
      return Status::InvalidArgument(
          "batch mines a corpus file; use --input=PATH, not --string");
    }
    if (options.input_path.empty() && !options.has_input_text) {
      return Status::InvalidArgument(
          StrCat(options.command, " requires --input=PATH",
                 options.command == "query" ? " (or --string=TEXT)" : ""));
    }
    if (options.has_input_text && !options.input_path.empty()) {
      return Status::InvalidArgument("--string and --input are exclusive");
    }
    if (options.has_input_text) {
      // A --string corpus has no file layout; corpus-shaping flags would
      // be silently ignored, which the flag-strictness contract forbids.
      for (const std::string& flag : seen_flags) {
        if (flag == "format" || flag == "column" || flag == "csv-header") {
          return Status::InvalidArgument(
              StrCat("flag --", flag,
                     " requires --input=PATH (a corpus file), not "
                     "--string"));
        }
      }
    }
    if (options.format != "lines" && options.format != "csv") {
      return Status::InvalidArgument(StrCat(
          "--format must be lines or csv, got \"", options.format, "\""));
    }
    if (options.format != "csv") {
      // CSV-shaping flags with a lines corpus would be silently ignored,
      // which is exactly what per-command flag validation exists to stop.
      for (const std::string& flag : seen_flags) {
        if (flag == "column" || flag == "csv-header") {
          return Status::InvalidArgument(
              StrCat("flag --", flag, " requires --format=csv"));
        }
      }
    }
    if (options.cache < 0) {
      return Status::InvalidArgument(
          StrCat("--cache must be >= 0, got ", options.cache));
    }
    // An explicit out-of-range --alpha-p must not be conflated with the
    // "unset" sentinel (-1.0): --alpha-p=-0.001 silently falling back to
    // --alpha0 would invert the documented precedence.
    for (const std::string& flag : seen_flags) {
      if (flag == "alpha-p" &&
          (options.alpha_p <= 0.0 || options.alpha_p >= 1.0)) {
        return Status::InvalidArgument(
            StrCat("--alpha-p must be in (0, 1), got ", options.alpha_p));
      }
    }
    if (options.command == "query") {
      if (options.queries.empty() && options.queries_file.empty()) {
        return Status::InvalidArgument(
            "query requires --query=SPEC (repeatable) or "
            "--queries-file=PATH");
      }
      if (!options.probs.empty()) {
        // Each query carries its own model; a corpus-level --probs would
        // be silently shadowed.
        return Status::InvalidArgument(
            "flag --probs is not consumed by query; put "
            "model=probs(p1;p2;...) inside each query instead");
      }
      return options;
    }
    SIGSUB_ASSIGN_OR_RETURN(engine::JobKind kind,
                            engine::ParseJobKind(options.job));
    // Job-parameter flags are only consumed by their own kind; reject the
    // rest so e.g. `--job=mss --pvalue=0.01` cannot silently do nothing.
    for (const std::string& flag : seen_flags) {
      bool relevant = true;
      if (flag == "t") {
        relevant = kind == engine::JobKind::kTopT ||
                   kind == engine::JobKind::kTopDisjoint;
      } else if (flag == "min-length") {
        relevant = kind == engine::JobKind::kMinLength ||
                   kind == engine::JobKind::kTopDisjoint;
      } else if (flag == "alpha0" || flag == "pvalue" || flag == "alpha-p") {
        relevant = kind == engine::JobKind::kThreshold;
      }
      if (!relevant) {
        return Status::InvalidArgument(
            StrCat("flag --", flag, " is not consumed by --job=",
                   options.job));
      }
    }
    return options;
  }
  if (options.command == "substrings") {
    if (options.mmap) {
      if (options.has_input_text) {
        return Status::InvalidArgument(
            "flag --mmap maps a file; use --input=PATH, not --string");
      }
      if (options.input_path.empty()) {
        return Status::InvalidArgument("flag --mmap requires --input=PATH");
      }
    }
    // Flag-level range checks stay in flag vocabulary; the engine's
    // query-layer messages (field top, field min_count, ...) cover the
    // rest identically for the CLI and wire surfaces.
    if (options.all_substrings && options.max_length < 1) {
      return Status::InvalidArgument(
          "flag --all enumerates every distinct substring and requires "
          "--max-length=N to bound the output");
    }
    for (const std::string& flag : seen_flags) {
      if (flag == "alpha-p" &&
          (options.alpha_p <= 0.0 || options.alpha_p >= 1.0)) {
        return Status::InvalidArgument(
            StrCat("--alpha-p must be in (0, 1), got ", options.alpha_p));
      }
      if (flag == "cache" && options.cache < 0) {
        return Status::InvalidArgument(
            StrCat("--cache must be >= 0, got ", options.cache));
      }
    }
  }
  if (!options.has_input_text && options.input_path.empty()) {
    return Status::InvalidArgument("one of --string or --input is required");
  }
  if (options.has_input_text && !options.input_path.empty()) {
    return Status::InvalidArgument("--string and --input are exclusive");
  }
  return options;
}

Result<std::string> Run(const CliOptions& options) {
  // Process-wide: a reader exiting mid-pipe (`sigsub_cli ... | head`)
  // must surface as an EPIPE write error, not kill the process — and the
  // serve/client sockets need the same guarantee.
  IgnoreSigpipe();
  // SIGSUB_FAULT=op:nth:fault arms the syscall fault-injection shim for
  // out-of-process crash testing of the real binary (no-op when unset;
  // a malformed spec is a hard error rather than silently testing
  // nothing).
  SIGSUB_RETURN_IF_ERROR(fault::ArmFromEnv());
  // Single-string commands build their ChiSquareContexts inside the core
  // convenience overloads, so the dispatch knob is applied process-wide
  // for this invocation (the batch engine additionally pins it in its
  // EngineOptions). Every Run() sets it, so a later invocation without
  // the flag restores the auto default.
  core::SetDefaultX2Dispatch(options.x2_dispatch);
  // An explicit --x2-dispatch earns a report of what actually resolved:
  // `simd` on a host without AVX2 silently degrades to scalar inside the
  // kernel dispatch, and an audit must be able to see that happened.
  const std::string banner =
      options.x2_dispatch_explicit ? DispatchReport(options.x2_dispatch)
                                   : std::string();
  auto with_banner = [&banner](Result<std::string> report) {
    if (!report.ok() || banner.empty()) return report;
    return Result<std::string>(banner + *report);
  };
  if (options.command == "batch") return with_banner(RunBatch(options));
  if (options.command == "query") return with_banner(RunQuery(options));
  if (options.command == "substrings") {
    return with_banner(RunSubstrings(options));
  }
  if (options.command == "stream") return with_banner(RunStream(options));
  if (options.command == "serve") return with_banner(RunServe(options));
  if (options.command == "client") return RunClient(options);
  SIGSUB_ASSIGN_OR_RETURN(std::string text, LoadInput(options));
  if (text.empty()) {
    return Status::InvalidArgument("input string is empty");
  }

  // Alphabet: explicit or inferred with the corpus rule, so single-string
  // and batch runs score the same input under the same alphabet.
  std::string alphabet_chars = options.alphabet;
  if (alphabet_chars.empty()) {
    alphabet_chars = engine::Corpus::InferAlphabetChars({text});
  }
  SIGSUB_ASSIGN_OR_RETURN(seq::Alphabet alphabet,
                          seq::Alphabet::FromCharacters(alphabet_chars));
  SIGSUB_ASSIGN_OR_RETURN(seq::Sequence sequence,
                          seq::Sequence::FromString(alphabet, text));

  std::vector<double> probs = options.probs;
  if (probs.empty()) {
    probs.assign(alphabet.size(), 1.0 / alphabet.size());
  }
  SIGSUB_ASSIGN_OR_RETURN(seq::MultinomialModel model,
                          seq::MultinomialModel::Make(std::move(probs)));

  const int k = model.alphabet_size();
  std::ostringstream out;
  out << "n = " << sequence.size() << ", k = " << k << "\n";

  if (options.command == "mss") {
    SIGSUB_ASSIGN_OR_RETURN(
        core::MssResult result,
        core::FindMssParallel(sequence, model, options.threads));
    out << RenderSubstring(result.best, k, text);
    out << "examined " << result.stats.positions_examined << " of "
        << core::TrivialScanPositions(sequence.size())
        << " candidate positions\n";
  } else if (options.command == "topt") {
    if (options.t < 1) {
      return Status::InvalidArgument(StrCat("--t must be >= 1, got ",
                                            options.t));
    }
    io::TableWriter table({"rank", "start", "end", "X2", "p-value"});
    if (options.disjoint) {
      core::TopDisjointOptions disjoint;
      disjoint.t = options.t;
      disjoint.min_length = options.min_length;
      SIGSUB_ASSIGN_OR_RETURN(std::vector<core::Substring> subs,
                              core::FindTopDisjoint(sequence, model,
                                                    disjoint));
      for (size_t i = 0; i < subs.size(); ++i) {
        table.AddRow({std::to_string(i + 1), std::to_string(subs[i].start),
                      std::to_string(subs[i].end),
                      StrFormat("%.4f", subs[i].chi_square),
                      StrFormat("%.4g", core::SubstringPValue(
                                            subs[i].chi_square, k))});
      }
    } else {
      SIGSUB_ASSIGN_OR_RETURN(core::TopTResult result,
                              core::FindTopT(sequence, model, options.t));
      for (size_t i = 0; i < result.top.size(); ++i) {
        const core::Substring& sub = result.top[i];
        table.AddRow({std::to_string(i + 1), std::to_string(sub.start),
                      std::to_string(sub.end),
                      StrFormat("%.4f", sub.chi_square),
                      StrFormat("%.4g",
                                core::SubstringPValue(sub.chi_square, k))});
      }
    }
    out << table.Render();
  } else if (options.command == "threshold") {
    SIGSUB_ASSIGN_OR_RETURN(double alpha0,
                            ResolveAlpha0(options, k, out, "threshold"));
    core::ThresholdOptions threshold;
    threshold.max_matches = 1000;
    SIGSUB_ASSIGN_OR_RETURN(
        core::ThresholdResult result,
        core::FindAboveThreshold(sequence, model, alpha0, threshold));
    out << result.match_count << " substrings above " << alpha0;
    if (result.match_count >
        static_cast<int64_t>(result.matches.size())) {
      out << " (showing " << result.matches.size() << ")";
    }
    out << "\n";
    io::TableWriter table({"start", "end", "X2"});
    for (const core::Substring& sub : result.matches) {
      table.AddRow({std::to_string(sub.start), std::to_string(sub.end),
                    StrFormat("%.4f", sub.chi_square)});
    }
    if (table.row_count() > 0) out << table.Render();
  } else if (options.command == "minlen") {
    SIGSUB_ASSIGN_OR_RETURN(
        core::MssResult result,
        core::FindMssMinLength(sequence, model, options.min_length));
    // `best` is only meaningful when a window satisfied the floor; a
    // floor above n would otherwise render a bogus zero-length row with
    // X² = 0 and p-value 1.
    if (result.best.length() == 0) {
      out << "no substring of length >= " << options.min_length
          << " exists (n = " << sequence.size() << ")\n";
    } else {
      out << RenderSubstring(result.best, k, text);
    }
  } else if (options.command == "score") {
    if (options.start < 0 || options.end < 0) {
      return Status::InvalidArgument("score needs --start and --end");
    }
    SIGSUB_ASSIGN_OR_RETURN(
        core::ScoredSubstring scored,
        core::ScoreSubstring(sequence, model, options.start, options.end));
    out << RenderSubstring(scored.substring, k, text);
    out << "G2 = " << StrFormat("%.4f", scored.g2) << "\n";
  }
  return banner + out.str();
}

}  // namespace cli
}  // namespace sigsub
