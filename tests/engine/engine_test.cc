#include "engine/engine.h"

#include <string>
#include <vector>

#include "api/serde.h"
#include "core/agmm.h"
#include "core/arlm.h"
#include "core/blocked_scan.h"
#include "core/chi_square.h"
#include "core/length_bounded.h"
#include "core/markov_scan.h"
#include "core/min_length.h"
#include "core/mss.h"
#include "core/suffix_scan.h"
#include "core/threshold.h"
#include "core/top_disjoint.h"
#include "core/top_t.h"
#include "engine/engine_stats.h"
#include "engine/fingerprint.h"
#include "engine/stream_manager.h"
#include "gtest/gtest.h"
#include "io/csv.h"
#include "seq/generators.h"
#include "seq/model.h"
#include "seq/rng.h"
#include "stats/chi_squared.h"
#include "testing/test_util.h"

namespace sigsub {
namespace engine {
namespace {

/// A small corpus with planted structure: random binary records plus runs.
Corpus MakeCorpus() {
  seq::Rng rng(20120731);
  std::vector<std::string> records;
  for (int i = 0; i < 6; ++i) {
    seq::Sequence s = seq::GenerateNull(2, 400, rng);
    std::string text = s.ToString(seq::Alphabet::Binary());
    // Plant a run whose position depends on the record.
    text.replace(static_cast<size_t>(40 + 30 * i), 25, std::string(25, '1'));
    records.push_back(text);
  }
  auto corpus = Corpus::FromStrings(records, "01");
  EXPECT_TRUE(corpus.ok());
  return std::move(corpus).value();
}

std::vector<JobSpec> MakeMixedJobs(const Corpus& corpus) {
  std::vector<JobSpec> jobs;
  for (int64_t i = 0; i < corpus.size(); ++i) {
    for (JobKind kind :
         {JobKind::kMss, JobKind::kTopT, JobKind::kTopDisjoint,
          JobKind::kThreshold, JobKind::kMinLength}) {
      JobSpec spec;
      spec.kind = kind;
      spec.sequence_index = i;
      spec.params.t = 4;
      spec.params.min_length = 10;
      spec.params.alpha0 = 8.0;
      jobs.push_back(spec);
    }
  }
  return jobs;
}

TEST(EngineTest, MatchesDirectKernelCallsForAllKinds) {
  Corpus corpus = MakeCorpus();
  Engine engine({.num_threads = 2, .cache_capacity = 0});
  std::vector<JobSpec> jobs = MakeMixedJobs(corpus);
  ASSERT_OK_AND_ASSIGN(std::vector<JobResult> results,
                       engine.ExecuteBatch(corpus, jobs));
  ASSERT_EQ(results.size(), jobs.size());

  seq::MultinomialModel model = seq::MultinomialModel::Uniform(2);
  for (size_t i = 0; i < jobs.size(); ++i) {
    const JobSpec& spec = jobs[i];
    const JobResult& result = results[i];
    EXPECT_EQ(result.job_index, static_cast<int64_t>(i));
    EXPECT_EQ(result.sequence_index, spec.sequence_index);
    EXPECT_FALSE(result.cache_hit);
    const seq::Sequence& sequence = corpus.sequence(spec.sequence_index);
    switch (spec.kind) {
      case JobKind::kMss: {
        ASSERT_OK_AND_ASSIGN(core::MssResult direct,
                             core::FindMss(sequence, model));
        // Bit-identical, not merely close: same kernel, same order.
        EXPECT_EQ(result.best.chi_square, direct.best.chi_square);
        EXPECT_EQ(result.best.start, direct.best.start);
        EXPECT_EQ(result.best.end, direct.best.end);
        EXPECT_EQ(result.stats.positions_examined,
                  direct.stats.positions_examined);
        break;
      }
      case JobKind::kTopT: {
        ASSERT_OK_AND_ASSIGN(core::TopTResult direct,
                             core::FindTopT(sequence, model, spec.params.t));
        ASSERT_EQ(result.substrings.size(), direct.top.size());
        for (size_t r = 0; r < direct.top.size(); ++r) {
          EXPECT_EQ(result.substrings[r].chi_square,
                    direct.top[r].chi_square);
          EXPECT_EQ(result.substrings[r].start, direct.top[r].start);
          EXPECT_EQ(result.substrings[r].end, direct.top[r].end);
        }
        break;
      }
      case JobKind::kTopDisjoint: {
        core::TopDisjointOptions options;
        options.t = spec.params.t;
        options.min_length = spec.params.min_length;
        ASSERT_OK_AND_ASSIGN(
            std::vector<core::Substring> direct,
            core::FindTopDisjoint(sequence, model, options));
        ASSERT_EQ(result.substrings.size(), direct.size());
        for (size_t r = 0; r < direct.size(); ++r) {
          EXPECT_EQ(result.substrings[r].chi_square, direct[r].chi_square);
        }
        break;
      }
      case JobKind::kThreshold: {
        ASSERT_OK_AND_ASSIGN(
            core::ThresholdResult direct,
            core::FindAboveThreshold(sequence, model, spec.params.alpha0));
        EXPECT_EQ(result.match_count, direct.match_count);
        if (direct.match_count > 0) {
          EXPECT_EQ(result.best.chi_square, direct.best.chi_square);
        }
        break;
      }
      case JobKind::kMinLength: {
        ASSERT_OK_AND_ASSIGN(
            core::MssResult direct,
            core::FindMssMinLength(sequence, model, spec.params.min_length));
        EXPECT_EQ(result.best.chi_square, direct.best.chi_square);
        EXPECT_GE(result.best.length(), spec.params.min_length);
        break;
      }
    }
  }
}

TEST(EngineTest, DeterministicAcrossThreadCounts) {
  Corpus corpus = MakeCorpus();
  std::vector<JobSpec> jobs = MakeMixedJobs(corpus);
  Engine one({.num_threads = 1, .cache_capacity = 0});
  Engine four({.num_threads = 4, .cache_capacity = 0});
  ASSERT_OK_AND_ASSIGN(std::vector<JobResult> serial,
                       one.ExecuteBatch(corpus, jobs));
  ASSERT_OK_AND_ASSIGN(std::vector<JobResult> parallel,
                       four.ExecuteBatch(corpus, jobs));
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].substrings.size(), parallel[i].substrings.size());
    for (size_t r = 0; r < serial[i].substrings.size(); ++r) {
      // Bit-identical X², starts and ends: parallelism is across jobs,
      // never inside a kernel.
      EXPECT_EQ(serial[i].substrings[r].chi_square,
                parallel[i].substrings[r].chi_square);
      EXPECT_EQ(serial[i].substrings[r].start, parallel[i].substrings[r].start);
      EXPECT_EQ(serial[i].substrings[r].end, parallel[i].substrings[r].end);
    }
    EXPECT_EQ(serial[i].match_count, parallel[i].match_count);
  }
}

TEST(EngineTest, InRecordShardingIsBitIdenticalAcrossThreadCounts) {
  // One long record with a planted anomaly, sharded at a low threshold:
  // the X² value must be bit-identical at 1, 2, and 8 threads (and to
  // the sequential kernel) — the sharded scan's skips are only ever
  // taken when safe against the final maximum.
  seq::Rng rng(20120801);
  seq::Sequence s = seq::GenerateNull(2, 6000, rng);
  std::string text = s.ToString(seq::Alphabet::Binary());
  text.replace(2500, 180, std::string(180, '1'));
  auto corpus = Corpus::FromStrings({text}, "01");
  ASSERT_TRUE(corpus.ok());

  ASSERT_OK_AND_ASSIGN(
      core::MssResult direct,
      core::FindMss(corpus->sequence(0), seq::MultinomialModel::Uniform(2)));

  for (int threads : {1, 2, 8}) {
    Engine engine({.num_threads = threads,
                   .cache_capacity = 0,
                   .shard_min_sequence = 512});
    ASSERT_OK_AND_ASSIGN(auto results,
                         engine.ExecuteUniform(*corpus, JobKind::kMss));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].best.chi_square, direct.best.chi_square)
        << "threads=" << threads;
    ASSERT_EQ(results[0].substrings.size(), 1u);
    EXPECT_EQ(results[0].substrings[0].chi_square, direct.best.chi_square);
    // The sharded scan still covers every start position exactly once.
    EXPECT_EQ(results[0].stats.start_positions, 6000);
  }
}

TEST(EngineTest, ShardingThresholdZeroDisables) {
  Corpus corpus = MakeCorpus();
  Engine sharded({.num_threads = 4,
                  .cache_capacity = 0,
                  .shard_min_sequence = 1});
  Engine plain({.num_threads = 4,
                .cache_capacity = 0,
                .shard_min_sequence = 0});
  ASSERT_OK_AND_ASSIGN(auto a, sharded.ExecuteUniform(corpus, JobKind::kMss));
  ASSERT_OK_AND_ASSIGN(auto b, plain.ExecuteUniform(corpus, JobKind::kMss));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].best.chi_square, b[i].best.chi_square) << i;
  }
}

TEST(EngineTest, CacheHitsOnRepeatedBatch) {
  Corpus corpus = MakeCorpus();
  Engine engine({.num_threads = 2, .cache_capacity = 256});
  std::vector<JobSpec> jobs = MakeMixedJobs(corpus);

  ASSERT_OK_AND_ASSIGN(std::vector<JobResult> cold,
                       engine.ExecuteBatch(corpus, jobs));
  CacheStats after_cold = engine.cache_stats();
  EXPECT_EQ(after_cold.hits, 0);
  EXPECT_EQ(after_cold.misses, static_cast<int64_t>(jobs.size()));
  EXPECT_EQ(after_cold.insertions, static_cast<int64_t>(jobs.size()));

  ASSERT_OK_AND_ASSIGN(std::vector<JobResult> warm,
                       engine.ExecuteBatch(corpus, jobs));
  CacheStats after_warm = engine.cache_stats();
  EXPECT_EQ(after_warm.hits, static_cast<int64_t>(jobs.size()));
  EXPECT_EQ(after_warm.misses, static_cast<int64_t>(jobs.size()));

  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_FALSE(cold[i].cache_hit);
    EXPECT_TRUE(warm[i].cache_hit);
    ASSERT_EQ(warm[i].substrings.size(), cold[i].substrings.size());
    for (size_t r = 0; r < cold[i].substrings.size(); ++r) {
      EXPECT_EQ(warm[i].substrings[r].chi_square,
                cold[i].substrings[r].chi_square);
    }
    // Cache hits never rescan.
    EXPECT_EQ(warm[i].stats.positions_examined, 0);
  }
}

TEST(EngineTest, CacheDistinguishesParamsAndModels) {
  Corpus corpus = MakeCorpus();
  Engine engine({.num_threads = 1, .cache_capacity = 64});

  JobSpec topt3{JobKind::kTopT, 0, {}, {.t = 3}};
  JobSpec topt5{JobKind::kTopT, 0, {}, {.t = 5}};
  JobSpec skewed = topt3;
  skewed.probs = {0.8, 0.2};
  ASSERT_OK_AND_ASSIGN(auto first,
                       engine.ExecuteBatch(corpus, {topt3, topt5, skewed}));
  EXPECT_EQ(engine.cache_stats().misses, 3);  // All distinct cache keys.
  ASSERT_OK_AND_ASSIGN(auto second,
                       engine.ExecuteBatch(corpus, {topt3, topt5, skewed}));
  EXPECT_EQ(engine.cache_stats().hits, 3);
  EXPECT_EQ(first[0].substrings.size(), 3u);
  EXPECT_EQ(first[1].substrings.size(), 5u);
}

TEST(EngineTest, IrrelevantParamsShareCacheEntries) {
  // Two MSS jobs differing only in `t` describe the same computation:
  // the typed lowering drops irrelevant params structurally, so the
  // canonical-bytes fingerprints coincide.
  JobSpec mss3{JobKind::kMss, 0, {}, {.t = 3}};
  JobSpec mss99{JobKind::kMss, 0, {}, {.t = 99}};
  EXPECT_EQ(ToQuerySpec(mss3), ToQuerySpec(mss99));
  EXPECT_EQ(api::FingerprintQuery(ToQuerySpec(mss3)),
            api::FingerprintQuery(ToQuerySpec(mss99)));
  JobSpec topt3 = mss3;
  topt3.kind = JobKind::kTopT;
  JobSpec topt99 = mss99;
  topt99.kind = JobKind::kTopT;
  EXPECT_NE(api::FingerprintQuery(ToQuerySpec(topt3)),
            api::FingerprintQuery(ToQuerySpec(topt99)));
  JobSpec minlen3 = mss3;
  minlen3.kind = JobKind::kMinLength;
  EXPECT_NE(api::FingerprintQuery(ToQuerySpec(mss3)),
            api::FingerprintQuery(ToQuerySpec(minlen3)));
  // The record index is deliberately NOT part of the query fingerprint —
  // content identity comes from the sequence fingerprint.
  JobSpec other_record = mss3;
  other_record.sequence_index = 5;
  EXPECT_EQ(api::FingerprintQuery(ToQuerySpec(mss3)),
            api::FingerprintQuery(ToQuerySpec(other_record)));
}

TEST(EngineTest, ValidatesSpecs) {
  Corpus corpus = MakeCorpus();
  Engine engine;
  {
    JobSpec spec;
    spec.sequence_index = corpus.size();  // Out of range.
    auto result = engine.ExecuteBatch(corpus, {spec});
    ASSERT_TRUE(result.status().IsInvalidArgument());
    EXPECT_NE(result.status().message().find("job 0"), std::string::npos);
  }
  {
    JobSpec spec;
    spec.probs = {0.2, 0.3, 0.5};  // Wrong arity for a binary corpus.
    EXPECT_TRUE(
        engine.ExecuteBatch(corpus, {spec}).status().IsInvalidArgument());
  }
  {
    JobSpec spec;
    spec.probs = {0.9, 0.3};  // Does not sum to 1.
    EXPECT_TRUE(
        engine.ExecuteBatch(corpus, {spec}).status().IsInvalidArgument());
  }
  {
    JobSpec spec;
    spec.kind = JobKind::kTopT;
    spec.params.t = 0;
    EXPECT_TRUE(
        engine.ExecuteBatch(corpus, {spec}).status().IsInvalidArgument());
  }
  {
    JobSpec spec;
    spec.kind = JobKind::kThreshold;
    spec.params.alpha0 = -1.0;
    EXPECT_TRUE(
        engine.ExecuteBatch(corpus, {spec}).status().IsInvalidArgument());
  }
  {
    JobSpec spec;
    spec.kind = JobKind::kMinLength;
    spec.params.min_length = 0;
    EXPECT_TRUE(
        engine.ExecuteBatch(corpus, {spec}).status().IsInvalidArgument());
  }
}

TEST(EngineTest, DuplicateJobsRunTheirKernelOnce) {
  // Two records with identical content share a fingerprint, so the same
  // uniform job on both is one distinct computation.
  auto corpus = Corpus::FromStrings({"01100111101", "01100111101"});
  ASSERT_TRUE(corpus.ok());
  Engine engine({.num_threads = 2, .cache_capacity = 16});
  ASSERT_OK_AND_ASSIGN(auto results,
                       engine.ExecuteUniform(*corpus, JobKind::kMss));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].best.chi_square, results[1].best.chi_square);
  // Exactly one ran the kernel; its twin was served by that run.
  EXPECT_EQ((results[0].cache_hit ? 1 : 0) + (results[1].cache_hit ? 1 : 0),
            1);
  int64_t examined = results[0].stats.positions_examined +
                     results[1].stats.positions_examined;
  EXPECT_GT(examined, 0);
  EXPECT_EQ(results[0].cache_hit ? results[0].stats.positions_examined
                                 : results[1].stats.positions_examined,
            0);
}

TEST(EngineTest, EmptyBatchIsFine) {
  Corpus corpus = MakeCorpus();
  Engine engine;
  ASSERT_OK_AND_ASSIGN(auto results, engine.ExecuteBatch(corpus, {}));
  EXPECT_TRUE(results.empty());
}

TEST(EngineTest, ExecuteUniformCoversEveryRecord) {
  Corpus corpus = MakeCorpus();
  Engine engine({.num_threads = 3, .cache_capacity = 16});
  ASSERT_OK_AND_ASSIGN(auto results,
                       engine.ExecuteUniform(corpus, JobKind::kMss));
  ASSERT_EQ(results.size(), static_cast<size_t>(corpus.size()));
  for (int64_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)].sequence_index, i);
    // Every record has a planted run of 25 ones; the MSS must score high.
    EXPECT_GT(results[static_cast<size_t>(i)].best.chi_square, 15.0);
  }
}

TEST(EngineTest, ThresholdJobWithNoMatchesCarriesEmptyBest) {
  // scan_types.h: ThresholdResult::best is valid iff match_count > 0.
  // The engine's payload for a matchless threshold job must carry the
  // explicit empty shape (count 0, no substrings, zero-length best) that
  // formatting consumers key off — not a stale or garbage substring.
  auto corpus = Corpus::FromStrings({"0101"}, "01");
  ASSERT_TRUE(corpus.ok());
  Engine engine({.num_threads = 1, .cache_capacity = 4});
  JobParams params;
  params.alpha0 = 50.0;  // Far above anything a 4-symbol record reaches.
  ASSERT_OK_AND_ASSIGN(
      auto results,
      engine.ExecuteUniform(*corpus, JobKind::kThreshold, params));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].match_count, 0);
  EXPECT_TRUE(results[0].substrings.empty());
  EXPECT_EQ(results[0].best.length(), 0);
  EXPECT_EQ(results[0].best.chi_square, 0.0);
}

/// One QuerySpec of every kind with non-default parameters.
std::vector<api::QuerySpec> MakeAllKindQueries(int64_t sequence_index) {
  std::vector<api::QuerySpec> queries;
  auto add = [&](api::QueryRequest request) {
    api::QuerySpec spec;
    spec.sequence_index = sequence_index;
    spec.request = std::move(request);
    queries.push_back(std::move(spec));
  };
  add(api::MssQuery{});
  add(api::TopTQuery{4});
  add(api::TopDisjointQuery{3, 5, 0.0});
  add(api::ThresholdQuery{8.0, -1.0, 1000});
  add(api::MinLengthQuery{10});
  add(api::LengthBoundedQuery{5, 40});
  add(api::ArlmQuery{});
  add(api::AgmmQuery{});
  add(api::BlockedQuery{16});
  add(api::SubstringsQuery{5, 2, 0, 2, true, -1.0, -1.0});
  return queries;
}

/// The SuffixScanOptions equivalent of MakeAllKindQueries's substrings
/// entry, for direct-kernel comparisons.
core::SuffixScanOptions DirectSubstringsOptions() {
  core::SuffixScanOptions options;
  options.top_n = 5;
  options.min_length = 2;
  options.min_count = 2;
  options.maximal_only = true;
  return options;
}

TEST(QueryEngineTest, EveryKernelMatchesDirectCallBitIdentically) {
  Corpus corpus = MakeCorpus();
  Engine engine({.num_threads = 2, .cache_capacity = 0});
  std::vector<api::QuerySpec> queries;
  for (int64_t i = 0; i < corpus.size(); ++i) {
    for (api::QuerySpec& spec : MakeAllKindQueries(i)) {
      queries.push_back(std::move(spec));
    }
  }
  ASSERT_OK_AND_ASSIGN(std::vector<api::QueryResult> results,
                       engine.ExecuteQueries(corpus, queries));
  ASSERT_EQ(results.size(), queries.size());

  seq::MultinomialModel model = seq::MultinomialModel::Uniform(2);
  for (size_t i = 0; i < queries.size(); ++i) {
    const api::QuerySpec& spec = queries[i];
    const api::QueryResult& result = results[i];
    EXPECT_EQ(result.query_index, static_cast<int64_t>(i));
    EXPECT_EQ(result.sequence_index, spec.sequence_index);
    EXPECT_EQ(result.kind, spec.kind());
    EXPECT_FALSE(result.cache_hit);
    const seq::Sequence& sequence = corpus.sequence(spec.sequence_index);
    switch (spec.kind()) {
      case api::QueryKind::kMss: {
        ASSERT_OK_AND_ASSIGN(core::MssResult direct,
                             core::FindMss(sequence, model));
        EXPECT_EQ(result.best().chi_square, direct.best.chi_square);
        EXPECT_EQ(result.best().start, direct.best.start);
        EXPECT_EQ(result.best().end, direct.best.end);
        EXPECT_EQ(result.stats().positions_examined,
                  direct.stats.positions_examined);
        break;
      }
      case api::QueryKind::kTopT: {
        ASSERT_OK_AND_ASSIGN(core::TopTResult direct,
                             core::FindTopT(sequence, model, 4));
        std::span<const core::Substring> subs = result.substrings();
        ASSERT_EQ(subs.size(), direct.top.size());
        for (size_t r = 0; r < direct.top.size(); ++r) {
          EXPECT_EQ(subs[r].chi_square, direct.top[r].chi_square);
          EXPECT_EQ(subs[r].start, direct.top[r].start);
          EXPECT_EQ(subs[r].end, direct.top[r].end);
        }
        break;
      }
      case api::QueryKind::kTopDisjoint: {
        core::TopDisjointOptions options;
        options.t = 3;
        options.min_length = 5;
        ASSERT_OK_AND_ASSIGN(std::vector<core::Substring> direct,
                             core::FindTopDisjoint(sequence, model, options));
        std::span<const core::Substring> subs = result.substrings();
        ASSERT_EQ(subs.size(), direct.size());
        for (size_t r = 0; r < direct.size(); ++r) {
          EXPECT_EQ(subs[r].chi_square, direct[r].chi_square);
        }
        break;
      }
      case api::QueryKind::kThreshold: {
        ASSERT_OK_AND_ASSIGN(core::ThresholdResult direct,
                             core::FindAboveThreshold(sequence, model, 8.0));
        EXPECT_EQ(result.match_count(), direct.match_count);
        if (direct.match_count > 0) {
          EXPECT_EQ(result.best().chi_square, direct.best.chi_square);
        }
        break;
      }
      case api::QueryKind::kMinLength: {
        ASSERT_OK_AND_ASSIGN(core::MssResult direct,
                             core::FindMssMinLength(sequence, model, 10));
        EXPECT_EQ(result.best().chi_square, direct.best.chi_square);
        EXPECT_EQ(result.best().start, direct.best.start);
        EXPECT_EQ(result.best().end, direct.best.end);
        break;
      }
      case api::QueryKind::kLengthBounded: {
        ASSERT_OK_AND_ASSIGN(
            core::MssResult direct,
            core::FindMssLengthBounded(sequence, model, 5, 40));
        EXPECT_EQ(result.best().chi_square, direct.best.chi_square);
        EXPECT_EQ(result.best().start, direct.best.start);
        EXPECT_EQ(result.best().end, direct.best.end);
        break;
      }
      case api::QueryKind::kArlm: {
        ASSERT_OK_AND_ASSIGN(core::MssResult direct,
                             core::FindMssArlm(sequence, model));
        EXPECT_EQ(result.best().chi_square, direct.best.chi_square);
        EXPECT_EQ(result.best().start, direct.best.start);
        EXPECT_EQ(result.best().end, direct.best.end);
        break;
      }
      case api::QueryKind::kAgmm: {
        ASSERT_OK_AND_ASSIGN(core::MssResult direct,
                             core::FindMssAgmm(sequence, model));
        EXPECT_EQ(result.best().chi_square, direct.best.chi_square);
        EXPECT_EQ(result.best().start, direct.best.start);
        EXPECT_EQ(result.best().end, direct.best.end);
        break;
      }
      case api::QueryKind::kBlocked: {
        ASSERT_OK_AND_ASSIGN(core::MssResult direct,
                             core::FindMssBlocked(sequence, model, 16));
        EXPECT_EQ(result.best().chi_square, direct.best.chi_square);
        EXPECT_EQ(result.best().start, direct.best.start);
        EXPECT_EQ(result.best().end, direct.best.end);
        break;
      }
      case api::QueryKind::kSubstrings: {
        core::ChiSquareContext context(model);
        ASSERT_OK_AND_ASSIGN(core::SuffixScan scan,
                             core::SuffixScan::Build(sequence.symbols(), 2));
        ASSERT_OK_AND_ASSIGN(core::SuffixScanResult direct,
                             scan.Scan(context, DirectSubstringsOptions()));
        const auto& payload =
            std::get<api::SubstringsPayload>(result.payload);
        ASSERT_EQ(payload.ranked.size(), direct.classes.size());
        for (size_t r = 0; r < direct.classes.size(); ++r) {
          EXPECT_EQ(payload.ranked[r].chi_square,
                    direct.classes[r].substring.chi_square);
          EXPECT_EQ(payload.ranked[r].start, direct.classes[r].substring.start);
          EXPECT_EQ(payload.ranked[r].end, direct.classes[r].substring.end);
          EXPECT_EQ(payload.counts[r], direct.classes[r].count);
          EXPECT_EQ(payload.p_values[r], direct.classes[r].p_value);
        }
        EXPECT_EQ(result.match_count(), direct.match_count);
        EXPECT_EQ(result.stats().positions_examined,
                  direct.stats.candidates_scored);
        EXPECT_EQ(result.stats().start_positions,
                  direct.stats.classes_enumerated);
        break;
      }
    }
  }
}

TEST(QueryEngineTest, MarkovModelMssMatchesDirectCall) {
  // A Markov ModelSpec on an mss query runs the Markov-statistic scan.
  Corpus corpus = MakeCorpus();
  Engine engine({.num_threads = 1, .cache_capacity = 8});
  api::QuerySpec spec;
  spec.sequence_index = 0;
  spec.model = api::ModelSpec::Markov({0.6, 0.4, 0.3, 0.7});
  ASSERT_OK_AND_ASSIGN(auto results, engine.ExecuteQueries(corpus, {spec}));
  ASSERT_EQ(results.size(), 1u);

  ASSERT_OK_AND_ASSIGN(seq::MarkovModel model,
                       seq::MarkovModel::Make(2, {0.6, 0.4, 0.3, 0.7},
                                              {0.5, 0.5}));
  ASSERT_OK_AND_ASSIGN(core::MssResult direct,
                       core::FindMssMarkov(corpus.sequence(0), model));
  EXPECT_EQ(results[0].best().chi_square, direct.best.chi_square);
  EXPECT_EQ(results[0].best().start, direct.best.start);
  EXPECT_EQ(results[0].best().end, direct.best.end);

  // Repeats are cache hits like any other query.
  ASSERT_OK_AND_ASSIGN(auto warm, engine.ExecuteQueries(corpus, {spec}));
  EXPECT_TRUE(warm[0].cache_hit);
  EXPECT_EQ(warm[0].best().chi_square, direct.best.chi_square);
}

TEST(QueryEngineTest, AlphaPConvertsViaCriticalValue) {
  // threshold alpha_p must behave exactly like alpha0 = the χ²(k−1)
  // critical value of that p-value — and win when both fields are set.
  Corpus corpus = MakeCorpus();
  Engine engine({.num_threads = 1, .cache_capacity = 0});
  const double alpha_p = 0.001;
  const double critical =
      stats::ChiSquaredDistribution(1).CriticalValue(alpha_p);

  api::QuerySpec by_p;
  by_p.request = api::ThresholdQuery{-1.0, alpha_p, 1000};
  api::QuerySpec by_x2;
  by_x2.request = api::ThresholdQuery{critical, -1.0, 1000};
  api::QuerySpec both;  // A stale alpha0 must lose to alpha_p.
  both.request = api::ThresholdQuery{0.0, alpha_p, 1000};
  ASSERT_OK_AND_ASSIGN(auto results,
                       engine.ExecuteQueries(corpus, {by_p, by_x2, both}));
  EXPECT_GT(results[0].match_count(), 0);
  EXPECT_EQ(results[0].match_count(), results[1].match_count());
  EXPECT_EQ(results[0].best().chi_square, results[1].best().chi_square);
  EXPECT_EQ(results[2].match_count(), results[0].match_count());
}

TEST(QueryEngineTest, ValidationNamesQueryAndField) {
  Corpus corpus = MakeCorpus();
  Engine engine;
  {
    api::QuerySpec spec;
    spec.sequence_index = corpus.size();
    auto status = engine.ExecuteQueries(corpus, {spec}).status();
    ASSERT_TRUE(status.IsInvalidArgument());
    EXPECT_NE(status.message().find("query 0"), std::string::npos)
        << status.message();
    EXPECT_NE(status.message().find("field seq"), std::string::npos);
  }
  {
    api::QuerySpec spec;
    spec.request = api::LengthBoundedQuery{10, 5};
    auto status = engine.ExecuteQueries(corpus, {spec}).status();
    ASSERT_TRUE(status.IsInvalidArgument());
    EXPECT_NE(status.message().find("lenbound"), std::string::npos);
    EXPECT_NE(status.message().find("field max_length"), std::string::npos);
  }
  {
    api::QuerySpec spec;
    spec.request = api::ThresholdQuery{};  // Neither cutoff set.
    auto status = engine.ExecuteQueries(corpus, {spec}).status();
    ASSERT_TRUE(status.IsInvalidArgument());
    EXPECT_NE(status.message().find("alpha0"), std::string::npos);
    EXPECT_NE(status.message().find("alpha_p"), std::string::npos);
  }
  {
    api::QuerySpec spec;
    spec.request = api::ThresholdQuery{-1.0, 2.0,
                                       std::numeric_limits<int64_t>::max()};
    auto status = engine.ExecuteQueries(corpus, {spec}).status();
    ASSERT_TRUE(status.IsInvalidArgument());
    EXPECT_NE(status.message().find("field alpha_p"), std::string::npos);
  }
  {
    // NaN compares false against everything, so it would otherwise read
    // as "unset" in validation and disable the cutoff in the scan.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (api::ThresholdQuery bad :
         {api::ThresholdQuery{nan, -1.0, 100},
          api::ThresholdQuery{-1.0, nan, 100},
          api::ThresholdQuery{std::numeric_limits<double>::infinity(), -1.0,
                              100}}) {
      api::QuerySpec spec;
      spec.request = bad;
      auto status = engine.ExecuteQueries(corpus, {spec}).status();
      ASSERT_TRUE(status.IsInvalidArgument());
      EXPECT_NE(status.message().find("alpha0"), std::string::npos);
    }
    api::QuerySpec spec;
    spec.request = api::TopDisjointQuery{2, 1, nan};
    auto status = engine.ExecuteQueries(corpus, {spec}).status();
    ASSERT_TRUE(status.IsInvalidArgument());
    EXPECT_NE(status.message().find("field min_x2"), std::string::npos);
  }
  {
    api::QuerySpec spec;
    spec.request = api::BlockedQuery{0};
    auto status = engine.ExecuteQueries(corpus, {spec}).status();
    ASSERT_TRUE(status.IsInvalidArgument());
    EXPECT_NE(status.message().find("field block_size"), std::string::npos);
  }
  {
    // Markov models only make sense for the mss kernel.
    api::QuerySpec spec;
    spec.model = api::ModelSpec::Markov({0.5, 0.5, 0.5, 0.5});
    spec.request = api::TopTQuery{3};
    auto status = engine.ExecuteQueries(corpus, {spec}).status();
    ASSERT_TRUE(status.IsInvalidArgument());
    EXPECT_NE(status.message().find("field model"), std::string::npos);
  }
  {
    // Markov validation catches bad transition matrices.
    api::QuerySpec spec;
    spec.model = api::ModelSpec::Markov({0.5, 0.5, 0.5});  // Not k*k.
    auto status = engine.ExecuteQueries(corpus, {spec}).status();
    ASSERT_TRUE(status.IsInvalidArgument());
    EXPECT_NE(status.message().find("field model.transitions"),
              std::string::npos);
  }
}

TEST(QueryEngineTest, SubstringsMarkovModelMatchesDirectScan) {
  // A Markov ModelSpec on a substrings query scores classes with the
  // transition statistic, bit-identically to the direct suffix scan.
  Corpus corpus = MakeCorpus();
  Engine engine({.num_threads = 1, .cache_capacity = 8});
  api::QuerySpec spec;
  spec.model = api::ModelSpec::Markov({0.6, 0.4, 0.3, 0.7});
  spec.request = api::SubstringsQuery{5, 2, 0, 2, true, -1.0, -1.0};
  ASSERT_OK_AND_ASSIGN(auto results, engine.ExecuteQueries(corpus, {spec}));

  ASSERT_OK_AND_ASSIGN(
      seq::MarkovModel model,
      seq::MarkovModel::Make(2, {0.6, 0.4, 0.3, 0.7}, {0.5, 0.5}));
  ASSERT_OK_AND_ASSIGN(core::MarkovChiSquare markov,
                       core::MarkovChiSquare::Make(model));
  ASSERT_OK_AND_ASSIGN(
      core::SuffixScan scan,
      core::SuffixScan::Build(corpus.sequence(0).symbols(), 2));
  ASSERT_OK_AND_ASSIGN(core::SuffixScanResult direct,
                       scan.ScanMarkov(markov, DirectSubstringsOptions()));
  const auto& payload = std::get<api::SubstringsPayload>(results[0].payload);
  ASSERT_EQ(payload.ranked.size(), direct.classes.size());
  for (size_t r = 0; r < direct.classes.size(); ++r) {
    EXPECT_EQ(payload.ranked[r].chi_square,
              direct.classes[r].substring.chi_square);
    EXPECT_EQ(payload.counts[r], direct.classes[r].count);
  }
  ASSERT_OK_AND_ASSIGN(auto warm, engine.ExecuteQueries(corpus, {spec}));
  EXPECT_TRUE(warm[0].cache_hit);
  const auto& cached = std::get<api::SubstringsPayload>(warm[0].payload);
  EXPECT_EQ(cached.ranked.size(), payload.ranked.size());
  EXPECT_EQ(cached.counts, payload.counts);
  EXPECT_EQ(cached.p_values, payload.p_values);
}

TEST(QueryEngineTest, SubstringsAlphaPConvertsViaCriticalValue) {
  // alpha_p gates classes exactly like alpha0 = the χ²(k−1) critical
  // value, and wins when both are set.
  Corpus corpus = MakeCorpus();
  Engine engine({.num_threads = 1, .cache_capacity = 0});
  const double alpha_p = 0.001;
  const double critical =
      stats::ChiSquaredDistribution(1).CriticalValue(alpha_p);
  api::QuerySpec by_p;
  by_p.request = api::SubstringsQuery{0, 1, 0, 2, true, -1.0, alpha_p};
  api::QuerySpec by_x2;
  by_x2.request = api::SubstringsQuery{0, 1, 0, 2, true, critical, -1.0};
  api::QuerySpec both;  // A stale alpha0 must lose to alpha_p.
  both.request = api::SubstringsQuery{0, 1, 0, 2, true, 0.0, alpha_p};
  ASSERT_OK_AND_ASSIGN(auto results,
                       engine.ExecuteQueries(corpus, {by_p, by_x2, both}));
  EXPECT_GT(results[0].match_count(), 0);
  EXPECT_EQ(results[0].match_count(), results[1].match_count());
  EXPECT_EQ(results[0].best().chi_square, results[1].best().chi_square);
  EXPECT_EQ(results[2].match_count(), results[0].match_count());
}

TEST(QueryEngineTest, SubstringsValidationNamesField) {
  Corpus corpus = MakeCorpus();
  Engine engine;
  struct Case {
    api::SubstringsQuery query;
    const char* needle;
  };
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Case cases[] = {
      {{-1, 1, 0, 2, true, -1.0, -1.0}, "field top"},
      {{10, 0, 0, 2, true, -1.0, -1.0}, "field min_length"},
      {{10, 5, 3, 2, true, -1.0, -1.0}, "field max_length"},
      {{10, 1, 0, 0, true, -1.0, -1.0}, "field min_count"},
      {{10, 1, 0, 2, false, -1.0, -1.0}, "maximal=0"},
      {{10, 1, 0, 2, true, nan, -1.0}, "alpha0"},
      {{10, 1, 0, 2, true, -1.0, 1.5}, "field alpha_p"},
  };
  for (const Case& c : cases) {
    api::QuerySpec spec;
    spec.request = c.query;
    auto status = engine.ExecuteQueries(corpus, {spec}).status();
    ASSERT_TRUE(status.IsInvalidArgument()) << c.needle;
    EXPECT_NE(status.message().find("substrings"), std::string::npos)
        << status.message();
    EXPECT_NE(status.message().find(c.needle), std::string::npos)
        << status.message();
  }
  // Non-maximal enumeration is legal once a length bound caps the
  // candidate set.
  api::QuerySpec bounded;
  bounded.request = api::SubstringsQuery{10, 1, 6, 2, false, -1.0, -1.0};
  EXPECT_TRUE(engine.ExecuteQueries(corpus, {bounded}).ok());
}

TEST(QueryEngineTest, MappedCorpusMatchesTextLoaderAndRejectsWalkers) {
  // One record, loaded both ways: substrings results are bit-identical
  // and share cache entries (the mapped fingerprint equals the decoded
  // sequence fingerprint); sequence-walking kernels refuse the mapped
  // corpus by name.
  seq::Rng rng(424242);
  seq::Sequence planted = seq::GenerateNull(2, 600, rng);
  std::string text = planted.ToString(seq::Alphabet::Binary());
  text.replace(100, 30, std::string(30, '1'));
  const std::string path =
      ::testing::TempDir() + "/sigsub_engine_mapped_corpus.txt";
  ASSERT_OK(io::WriteTextFile(path, text + "\n"));
  ASSERT_OK_AND_ASSIGN(Corpus mapped, Corpus::FromMappedFile(path, "01"));
  ASSERT_OK_AND_ASSIGN(Corpus decoded, Corpus::FromStrings({text}, "01"));

  api::QuerySpec substrings;
  substrings.request = api::SubstringsQuery{8, 2, 0, 2, true, -1.0, -1.0};
  api::QuerySpec threshold;  // Counts-consuming kinds work mapped too.
  threshold.request = api::ThresholdQuery{8.0, -1.0, 1000};

  Engine engine({.num_threads = 1, .cache_capacity = 16});
  ASSERT_OK_AND_ASSIGN(auto from_mapped,
                       engine.ExecuteQueries(mapped, {substrings, threshold}));
  ASSERT_OK_AND_ASSIGN(
      auto from_decoded,
      engine.ExecuteQueries(decoded, {substrings, threshold}));
  const auto& a = std::get<api::SubstringsPayload>(from_mapped[0].payload);
  const auto& b = std::get<api::SubstringsPayload>(from_decoded[0].payload);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].chi_square, b.ranked[i].chi_square);
    EXPECT_EQ(a.ranked[i].start, b.ranked[i].start);
    EXPECT_EQ(a.ranked[i].end, b.ranked[i].end);
  }
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(from_mapped[1].match_count(), from_decoded[1].match_count());
  EXPECT_EQ(from_mapped[1].best().chi_square,
            from_decoded[1].best().chi_square);
  // Identical content + canonical query bytes = the decoded run was pure
  // cache hits.
  EXPECT_TRUE(from_decoded[0].cache_hit);
  EXPECT_TRUE(from_decoded[1].cache_hit);

  for (api::QueryRequest walker :
       {api::QueryRequest{api::ArlmQuery{}}, api::QueryRequest{api::AgmmQuery{}},
        api::QueryRequest{api::BlockedQuery{16}}}) {
    api::QuerySpec spec;
    spec.request = std::move(walker);
    auto status = engine.ExecuteQueries(mapped, {spec}).status();
    ASSERT_TRUE(status.IsInvalidArgument());
    EXPECT_NE(status.message().find("memory-mapped"), std::string::npos)
        << status.message();
  }
  api::QuerySpec markov_mss;
  markov_mss.model = api::ModelSpec::Markov({0.5, 0.5, 0.5, 0.5});
  auto status = engine.ExecuteQueries(mapped, {markov_mss}).status();
  ASSERT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("Markov"), std::string::npos)
      << status.message();
}

TEST(QueryEngineTest, CacheKeysOnCanonicalBytes) {
  // Two specs with distinct canonical forms are distinct computations;
  // the same spec resubmitted (even via a different JobSpec spelling) is
  // a hit.
  Corpus corpus = MakeCorpus();
  Engine engine({.num_threads = 1, .cache_capacity = 64});
  std::vector<api::QuerySpec> queries = MakeAllKindQueries(0);
  ASSERT_OK_AND_ASSIGN(auto cold, engine.ExecuteQueries(corpus, queries));
  EXPECT_EQ(engine.cache_stats().misses,
            static_cast<int64_t>(queries.size()));
  ASSERT_OK_AND_ASSIGN(auto warm, engine.ExecuteQueries(corpus, queries));
  EXPECT_EQ(engine.cache_stats().hits, static_cast<int64_t>(queries.size()));
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_FALSE(cold[i].cache_hit);
    EXPECT_TRUE(warm[i].cache_hit);
    EXPECT_EQ(warm[i].best().chi_square, cold[i].best().chi_square);
    EXPECT_EQ(warm[i].stats().positions_examined, 0);
  }
}

TEST(EngineStatsTest, SnapshotAggregatesEngineAndStreams) {
  Corpus corpus = MakeCorpus();
  Engine engine({.num_threads = 1, .cache_capacity = 64});
  std::vector<api::QuerySpec> queries = MakeAllKindQueries(0);
  ASSERT_OK(engine.ExecuteQueries(corpus, queries).status());
  ASSERT_OK(engine.ExecuteQueries(corpus, queries).status());

  StreamManager streams;
  ASSERT_OK(streams.CreateStream("s", {0.5, 0.5}));
  const std::vector<uint8_t> symbols = {0, 1, 0, 1};
  ASSERT_OK(streams.Append("s", symbols).status());

  EngineStats stats = CollectEngineStats(&engine, &streams);
  EXPECT_EQ(stats.queries_executed,
            static_cast<int64_t>(2 * queries.size()));
  EXPECT_EQ(stats.batches_executed, 2);
  EXPECT_EQ(stats.cache.hits, static_cast<int64_t>(queries.size()));
  EXPECT_EQ(stats.cache.misses, static_cast<int64_t>(queries.size()));
  EXPECT_EQ(stats.cache_capacity, 64);
  EXPECT_EQ(stats.open_streams, 1);
  EXPECT_EQ(stats.streams.streams_created, 1);
  EXPECT_EQ(stats.streams.symbols_ingested, 4);

  // One formatter feeds both the STATS wire line and `batch --verbose`,
  // so its shape is contract, not cosmetics.
  std::string line = FormatEngineStats(stats);
  for (const char* key :
       {"queries=", "batches=", "threads=", "cache_hits=", "cache_misses=",
        "cache_entries=", "cache_capacity=", "streams_open=",
        "streams_created=", "symbols_ingested=", "alarms_raised="}) {
    EXPECT_NE(line.find(key), std::string::npos) << key << " in " << line;
  }
}

TEST(EngineStatsTest, NullSourcesYieldZeros) {
  EngineStats stats = CollectEngineStats(nullptr, nullptr);
  EXPECT_EQ(stats.queries_executed, 0);
  EXPECT_EQ(stats.batches_executed, 0);
  EXPECT_EQ(stats.cache.hits, 0);
  EXPECT_EQ(stats.open_streams, 0);
  EXPECT_EQ(stats.streams.symbols_ingested, 0);
}

TEST(FingerprintTest, SequenceFingerprints) {
  seq::Rng rng(7);
  seq::Sequence a = seq::GenerateNull(2, 100, rng);
  seq::Sequence b = seq::GenerateNull(2, 100, rng);
  EXPECT_NE(FingerprintSequence(a), FingerprintSequence(b));
  EXPECT_EQ(FingerprintSequence(a), FingerprintSequence(a));
}

}  // namespace
}  // namespace engine
}  // namespace sigsub
