#include "engine/engine.h"

#include <string>
#include <vector>

#include "core/min_length.h"
#include "core/mss.h"
#include "core/threshold.h"
#include "core/top_disjoint.h"
#include "core/top_t.h"
#include "engine/fingerprint.h"
#include "gtest/gtest.h"
#include "seq/generators.h"
#include "seq/model.h"
#include "seq/rng.h"
#include "testing/test_util.h"

namespace sigsub {
namespace engine {
namespace {

/// A small corpus with planted structure: random binary records plus runs.
Corpus MakeCorpus() {
  seq::Rng rng(20120731);
  std::vector<std::string> records;
  for (int i = 0; i < 6; ++i) {
    seq::Sequence s = seq::GenerateNull(2, 400, rng);
    std::string text = s.ToString(seq::Alphabet::Binary());
    // Plant a run whose position depends on the record.
    text.replace(static_cast<size_t>(40 + 30 * i), 25, std::string(25, '1'));
    records.push_back(text);
  }
  auto corpus = Corpus::FromStrings(records, "01");
  EXPECT_TRUE(corpus.ok());
  return std::move(corpus).value();
}

std::vector<JobSpec> MakeMixedJobs(const Corpus& corpus) {
  std::vector<JobSpec> jobs;
  for (int64_t i = 0; i < corpus.size(); ++i) {
    for (JobKind kind :
         {JobKind::kMss, JobKind::kTopT, JobKind::kTopDisjoint,
          JobKind::kThreshold, JobKind::kMinLength}) {
      JobSpec spec;
      spec.kind = kind;
      spec.sequence_index = i;
      spec.params.t = 4;
      spec.params.min_length = 10;
      spec.params.alpha0 = 8.0;
      jobs.push_back(spec);
    }
  }
  return jobs;
}

TEST(EngineTest, MatchesDirectKernelCallsForAllKinds) {
  Corpus corpus = MakeCorpus();
  Engine engine({.num_threads = 2, .cache_capacity = 0});
  std::vector<JobSpec> jobs = MakeMixedJobs(corpus);
  ASSERT_OK_AND_ASSIGN(std::vector<JobResult> results,
                       engine.ExecuteBatch(corpus, jobs));
  ASSERT_EQ(results.size(), jobs.size());

  seq::MultinomialModel model = seq::MultinomialModel::Uniform(2);
  for (size_t i = 0; i < jobs.size(); ++i) {
    const JobSpec& spec = jobs[i];
    const JobResult& result = results[i];
    EXPECT_EQ(result.job_index, static_cast<int64_t>(i));
    EXPECT_EQ(result.sequence_index, spec.sequence_index);
    EXPECT_FALSE(result.cache_hit);
    const seq::Sequence& sequence = corpus.sequence(spec.sequence_index);
    switch (spec.kind) {
      case JobKind::kMss: {
        ASSERT_OK_AND_ASSIGN(core::MssResult direct,
                             core::FindMss(sequence, model));
        // Bit-identical, not merely close: same kernel, same order.
        EXPECT_EQ(result.best.chi_square, direct.best.chi_square);
        EXPECT_EQ(result.best.start, direct.best.start);
        EXPECT_EQ(result.best.end, direct.best.end);
        EXPECT_EQ(result.stats.positions_examined,
                  direct.stats.positions_examined);
        break;
      }
      case JobKind::kTopT: {
        ASSERT_OK_AND_ASSIGN(core::TopTResult direct,
                             core::FindTopT(sequence, model, spec.params.t));
        ASSERT_EQ(result.substrings.size(), direct.top.size());
        for (size_t r = 0; r < direct.top.size(); ++r) {
          EXPECT_EQ(result.substrings[r].chi_square,
                    direct.top[r].chi_square);
          EXPECT_EQ(result.substrings[r].start, direct.top[r].start);
          EXPECT_EQ(result.substrings[r].end, direct.top[r].end);
        }
        break;
      }
      case JobKind::kTopDisjoint: {
        core::TopDisjointOptions options;
        options.t = spec.params.t;
        options.min_length = spec.params.min_length;
        ASSERT_OK_AND_ASSIGN(
            std::vector<core::Substring> direct,
            core::FindTopDisjoint(sequence, model, options));
        ASSERT_EQ(result.substrings.size(), direct.size());
        for (size_t r = 0; r < direct.size(); ++r) {
          EXPECT_EQ(result.substrings[r].chi_square, direct[r].chi_square);
        }
        break;
      }
      case JobKind::kThreshold: {
        ASSERT_OK_AND_ASSIGN(
            core::ThresholdResult direct,
            core::FindAboveThreshold(sequence, model, spec.params.alpha0));
        EXPECT_EQ(result.match_count, direct.match_count);
        if (direct.match_count > 0) {
          EXPECT_EQ(result.best.chi_square, direct.best.chi_square);
        }
        break;
      }
      case JobKind::kMinLength: {
        ASSERT_OK_AND_ASSIGN(
            core::MssResult direct,
            core::FindMssMinLength(sequence, model, spec.params.min_length));
        EXPECT_EQ(result.best.chi_square, direct.best.chi_square);
        EXPECT_GE(result.best.length(), spec.params.min_length);
        break;
      }
    }
  }
}

TEST(EngineTest, DeterministicAcrossThreadCounts) {
  Corpus corpus = MakeCorpus();
  std::vector<JobSpec> jobs = MakeMixedJobs(corpus);
  Engine one({.num_threads = 1, .cache_capacity = 0});
  Engine four({.num_threads = 4, .cache_capacity = 0});
  ASSERT_OK_AND_ASSIGN(std::vector<JobResult> serial,
                       one.ExecuteBatch(corpus, jobs));
  ASSERT_OK_AND_ASSIGN(std::vector<JobResult> parallel,
                       four.ExecuteBatch(corpus, jobs));
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].substrings.size(), parallel[i].substrings.size());
    for (size_t r = 0; r < serial[i].substrings.size(); ++r) {
      // Bit-identical X², starts and ends: parallelism is across jobs,
      // never inside a kernel.
      EXPECT_EQ(serial[i].substrings[r].chi_square,
                parallel[i].substrings[r].chi_square);
      EXPECT_EQ(serial[i].substrings[r].start, parallel[i].substrings[r].start);
      EXPECT_EQ(serial[i].substrings[r].end, parallel[i].substrings[r].end);
    }
    EXPECT_EQ(serial[i].match_count, parallel[i].match_count);
  }
}

TEST(EngineTest, InRecordShardingIsBitIdenticalAcrossThreadCounts) {
  // One long record with a planted anomaly, sharded at a low threshold:
  // the X² value must be bit-identical at 1, 2, and 8 threads (and to
  // the sequential kernel) — the sharded scan's skips are only ever
  // taken when safe against the final maximum.
  seq::Rng rng(20120801);
  seq::Sequence s = seq::GenerateNull(2, 6000, rng);
  std::string text = s.ToString(seq::Alphabet::Binary());
  text.replace(2500, 180, std::string(180, '1'));
  auto corpus = Corpus::FromStrings({text}, "01");
  ASSERT_TRUE(corpus.ok());

  ASSERT_OK_AND_ASSIGN(
      core::MssResult direct,
      core::FindMss(corpus->sequence(0), seq::MultinomialModel::Uniform(2)));

  for (int threads : {1, 2, 8}) {
    Engine engine({.num_threads = threads,
                   .cache_capacity = 0,
                   .shard_min_sequence = 512});
    ASSERT_OK_AND_ASSIGN(auto results,
                         engine.ExecuteUniform(*corpus, JobKind::kMss));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].best.chi_square, direct.best.chi_square)
        << "threads=" << threads;
    ASSERT_EQ(results[0].substrings.size(), 1u);
    EXPECT_EQ(results[0].substrings[0].chi_square, direct.best.chi_square);
    // The sharded scan still covers every start position exactly once.
    EXPECT_EQ(results[0].stats.start_positions, 6000);
  }
}

TEST(EngineTest, ShardingThresholdZeroDisables) {
  Corpus corpus = MakeCorpus();
  Engine sharded({.num_threads = 4,
                  .cache_capacity = 0,
                  .shard_min_sequence = 1});
  Engine plain({.num_threads = 4,
                .cache_capacity = 0,
                .shard_min_sequence = 0});
  ASSERT_OK_AND_ASSIGN(auto a, sharded.ExecuteUniform(corpus, JobKind::kMss));
  ASSERT_OK_AND_ASSIGN(auto b, plain.ExecuteUniform(corpus, JobKind::kMss));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].best.chi_square, b[i].best.chi_square) << i;
  }
}

TEST(EngineTest, CacheHitsOnRepeatedBatch) {
  Corpus corpus = MakeCorpus();
  Engine engine({.num_threads = 2, .cache_capacity = 256});
  std::vector<JobSpec> jobs = MakeMixedJobs(corpus);

  ASSERT_OK_AND_ASSIGN(std::vector<JobResult> cold,
                       engine.ExecuteBatch(corpus, jobs));
  CacheStats after_cold = engine.cache_stats();
  EXPECT_EQ(after_cold.hits, 0);
  EXPECT_EQ(after_cold.misses, static_cast<int64_t>(jobs.size()));
  EXPECT_EQ(after_cold.insertions, static_cast<int64_t>(jobs.size()));

  ASSERT_OK_AND_ASSIGN(std::vector<JobResult> warm,
                       engine.ExecuteBatch(corpus, jobs));
  CacheStats after_warm = engine.cache_stats();
  EXPECT_EQ(after_warm.hits, static_cast<int64_t>(jobs.size()));
  EXPECT_EQ(after_warm.misses, static_cast<int64_t>(jobs.size()));

  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_FALSE(cold[i].cache_hit);
    EXPECT_TRUE(warm[i].cache_hit);
    ASSERT_EQ(warm[i].substrings.size(), cold[i].substrings.size());
    for (size_t r = 0; r < cold[i].substrings.size(); ++r) {
      EXPECT_EQ(warm[i].substrings[r].chi_square,
                cold[i].substrings[r].chi_square);
    }
    // Cache hits never rescan.
    EXPECT_EQ(warm[i].stats.positions_examined, 0);
  }
}

TEST(EngineTest, CacheDistinguishesParamsAndModels) {
  Corpus corpus = MakeCorpus();
  Engine engine({.num_threads = 1, .cache_capacity = 64});

  JobSpec topt3{JobKind::kTopT, 0, {}, {.t = 3}};
  JobSpec topt5{JobKind::kTopT, 0, {}, {.t = 5}};
  JobSpec skewed = topt3;
  skewed.probs = {0.8, 0.2};
  ASSERT_OK_AND_ASSIGN(auto first,
                       engine.ExecuteBatch(corpus, {topt3, topt5, skewed}));
  EXPECT_EQ(engine.cache_stats().misses, 3);  // All distinct cache keys.
  ASSERT_OK_AND_ASSIGN(auto second,
                       engine.ExecuteBatch(corpus, {topt3, topt5, skewed}));
  EXPECT_EQ(engine.cache_stats().hits, 3);
  EXPECT_EQ(first[0].substrings.size(), 3u);
  EXPECT_EQ(first[1].substrings.size(), 5u);
}

TEST(EngineTest, IrrelevantParamsShareCacheEntries) {
  // Two MSS jobs differing only in `t` describe the same computation.
  JobParams a{.t = 3};
  JobParams b{.t = 99};
  EXPECT_EQ(FingerprintJobParams(JobKind::kMss, a),
            FingerprintJobParams(JobKind::kMss, b));
  EXPECT_NE(FingerprintJobParams(JobKind::kTopT, a),
            FingerprintJobParams(JobKind::kTopT, b));
  EXPECT_NE(FingerprintJobParams(JobKind::kMss, a),
            FingerprintJobParams(JobKind::kMinLength, a));
}

TEST(EngineTest, ValidatesSpecs) {
  Corpus corpus = MakeCorpus();
  Engine engine;
  {
    JobSpec spec;
    spec.sequence_index = corpus.size();  // Out of range.
    auto result = engine.ExecuteBatch(corpus, {spec});
    ASSERT_TRUE(result.status().IsInvalidArgument());
    EXPECT_NE(result.status().message().find("job 0"), std::string::npos);
  }
  {
    JobSpec spec;
    spec.probs = {0.2, 0.3, 0.5};  // Wrong arity for a binary corpus.
    EXPECT_TRUE(
        engine.ExecuteBatch(corpus, {spec}).status().IsInvalidArgument());
  }
  {
    JobSpec spec;
    spec.probs = {0.9, 0.3};  // Does not sum to 1.
    EXPECT_TRUE(
        engine.ExecuteBatch(corpus, {spec}).status().IsInvalidArgument());
  }
  {
    JobSpec spec;
    spec.kind = JobKind::kTopT;
    spec.params.t = 0;
    EXPECT_TRUE(
        engine.ExecuteBatch(corpus, {spec}).status().IsInvalidArgument());
  }
  {
    JobSpec spec;
    spec.kind = JobKind::kThreshold;
    spec.params.alpha0 = -1.0;
    EXPECT_TRUE(
        engine.ExecuteBatch(corpus, {spec}).status().IsInvalidArgument());
  }
  {
    JobSpec spec;
    spec.kind = JobKind::kMinLength;
    spec.params.min_length = 0;
    EXPECT_TRUE(
        engine.ExecuteBatch(corpus, {spec}).status().IsInvalidArgument());
  }
}

TEST(EngineTest, DuplicateJobsRunTheirKernelOnce) {
  // Two records with identical content share a fingerprint, so the same
  // uniform job on both is one distinct computation.
  auto corpus = Corpus::FromStrings({"01100111101", "01100111101"});
  ASSERT_TRUE(corpus.ok());
  Engine engine({.num_threads = 2, .cache_capacity = 16});
  ASSERT_OK_AND_ASSIGN(auto results,
                       engine.ExecuteUniform(*corpus, JobKind::kMss));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].best.chi_square, results[1].best.chi_square);
  // Exactly one ran the kernel; its twin was served by that run.
  EXPECT_EQ((results[0].cache_hit ? 1 : 0) + (results[1].cache_hit ? 1 : 0),
            1);
  int64_t examined = results[0].stats.positions_examined +
                     results[1].stats.positions_examined;
  EXPECT_GT(examined, 0);
  EXPECT_EQ(results[0].cache_hit ? results[0].stats.positions_examined
                                 : results[1].stats.positions_examined,
            0);
}

TEST(EngineTest, EmptyBatchIsFine) {
  Corpus corpus = MakeCorpus();
  Engine engine;
  ASSERT_OK_AND_ASSIGN(auto results, engine.ExecuteBatch(corpus, {}));
  EXPECT_TRUE(results.empty());
}

TEST(EngineTest, ExecuteUniformCoversEveryRecord) {
  Corpus corpus = MakeCorpus();
  Engine engine({.num_threads = 3, .cache_capacity = 16});
  ASSERT_OK_AND_ASSIGN(auto results,
                       engine.ExecuteUniform(corpus, JobKind::kMss));
  ASSERT_EQ(results.size(), static_cast<size_t>(corpus.size()));
  for (int64_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)].sequence_index, i);
    // Every record has a planted run of 25 ones; the MSS must score high.
    EXPECT_GT(results[static_cast<size_t>(i)].best.chi_square, 15.0);
  }
}

TEST(EngineTest, ThresholdJobWithNoMatchesCarriesEmptyBest) {
  // scan_types.h: ThresholdResult::best is valid iff match_count > 0.
  // The engine's payload for a matchless threshold job must carry the
  // explicit empty shape (count 0, no substrings, zero-length best) that
  // formatting consumers key off — not a stale or garbage substring.
  auto corpus = Corpus::FromStrings({"0101"}, "01");
  ASSERT_TRUE(corpus.ok());
  Engine engine({.num_threads = 1, .cache_capacity = 4});
  JobParams params;
  params.alpha0 = 50.0;  // Far above anything a 4-symbol record reaches.
  ASSERT_OK_AND_ASSIGN(
      auto results,
      engine.ExecuteUniform(*corpus, JobKind::kThreshold, params));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].match_count, 0);
  EXPECT_TRUE(results[0].substrings.empty());
  EXPECT_EQ(results[0].best.length(), 0);
  EXPECT_EQ(results[0].best.chi_square, 0.0);
}

TEST(FingerprintTest, SequenceAndModelFingerprints) {
  seq::Rng rng(7);
  seq::Sequence a = seq::GenerateNull(2, 100, rng);
  seq::Sequence b = seq::GenerateNull(2, 100, rng);
  EXPECT_NE(FingerprintSequence(a), FingerprintSequence(b));
  EXPECT_EQ(FingerprintSequence(a), FingerprintSequence(a));
  std::vector<double> uniform{0.5, 0.5};
  std::vector<double> uniform_again{0.5, 0.5};
  std::vector<double> skew{0.6, 0.4};
  EXPECT_NE(FingerprintProbs(uniform), FingerprintProbs(skew));
  EXPECT_EQ(FingerprintProbs(uniform), FingerprintProbs(uniform_again));
}

}  // namespace
}  // namespace engine
}  // namespace sigsub
