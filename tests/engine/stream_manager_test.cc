#include "engine/stream_manager.h"

#include <barrier>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "core/streaming.h"
#include "seq/generators.h"
#include "seq/rng.h"
#include "testing/test_util.h"

namespace sigsub {
namespace engine {
namespace {

std::vector<double> Uniform(int k) {
  return std::vector<double>(static_cast<size_t>(k), 1.0 / k);
}

/// A burst-heavy test stream: null background with one strong planted
/// regime, so calibrated detectors raise a handful of alarms.
std::vector<uint8_t> BurstStream(uint64_t seed, int64_t null_length,
                                 int64_t burst_length) {
  seq::Rng rng(seed);
  auto stream = seq::GenerateRegimes(
      2,
      {{null_length, {0.5, 0.5}},
       {burst_length, {0.05, 0.95}},
       {null_length / 2, {0.5, 0.5}}},
      rng);
  auto symbols = stream->symbols();
  return std::vector<uint8_t>(symbols.begin(), symbols.end());
}

core::StreamingDetector::Options SmallWindow() {
  core::StreamingDetector::Options options;
  options.max_window = 128;
  options.alpha = 1e-5;
  return options;
}

TEST(StreamManagerTest, CreateAppendSnapshotCloseRoundTrip) {
  StreamManager manager;
  ASSERT_OK(manager.CreateStream("sensor-a", Uniform(2), SmallWindow()));
  std::vector<uint8_t> stream = BurstStream(1, 2000, 300);
  auto alarms = manager.Append("sensor-a", stream);
  ASSERT_OK(alarms.status());
  EXPECT_GT(*alarms, 0);

  auto snapshot = manager.Snapshot("sensor-a");
  ASSERT_OK(snapshot.status());
  EXPECT_EQ(snapshot->name, "sensor-a");
  EXPECT_EQ(snapshot->position, static_cast<int64_t>(stream.size()));
  EXPECT_EQ(snapshot->alarms_total, *alarms);
  EXPECT_EQ(snapshot->alarms_dropped, 0);
  EXPECT_EQ(static_cast<int64_t>(snapshot->recent_alarms.size()), *alarms);
  EXPECT_EQ(snapshot->scales.size(), snapshot->thresholds.size());
  EXPECT_EQ(snapshot->scales.size(), snapshot->chi_squares.size());

  ASSERT_OK(manager.CloseStream("sensor-a"));
  EXPECT_TRUE(manager.Snapshot("sensor-a").status().IsNotFound());
  StreamManagerStats stats = manager.stats();
  EXPECT_EQ(stats.streams_created, 1);
  EXPECT_EQ(stats.streams_closed, 1);
  EXPECT_EQ(stats.symbols_ingested, static_cast<int64_t>(stream.size()));
  EXPECT_EQ(stats.alarms_raised, *alarms);
}

TEST(StreamManagerTest, ManagerMatchesStandaloneDetector) {
  // A stream fed through the manager must behave exactly like a
  // standalone StreamingDetector fed the same chunks.
  StreamManager manager;
  auto options = SmallWindow();
  ASSERT_OK(manager.CreateStream("s", Uniform(2), options));
  auto model = seq::MultinomialModel::Uniform(2);
  auto direct = core::StreamingDetector::Make(model, options).value();

  std::vector<uint8_t> stream = BurstStream(2, 3000, 200);
  int64_t manager_alarms = 0;
  const size_t chunk = 512;
  for (size_t offset = 0; offset < stream.size(); offset += chunk) {
    size_t take = std::min(chunk, stream.size() - offset);
    std::span<const uint8_t> slice(stream.data() + offset, take);
    auto result = manager.Append("s", slice);
    ASSERT_OK(result.status());
    manager_alarms += *result;
    direct.AppendChunk(slice);
  }
  EXPECT_EQ(manager_alarms, direct.alarms_raised());
  auto snapshot = manager.Snapshot("s");
  ASSERT_OK(snapshot.status());
  EXPECT_EQ(snapshot->chi_squares, direct.CurrentChiSquares());
}

TEST(StreamManagerTest, ManagerDispatchReachesDetectorScoring) {
  // StreamManagerOptions::x2_dispatch must govern the detectors' scoring
  // kernels, not just the shared context build — a SIMD request that the
  // detector silently re-resolved to scalar would contradict the CLI's
  // dispatch report. Pin: a manager-created stream scores bit-identically
  // to a standalone detector built with the same explicit dispatch (on
  // hosts without AVX2 both sides fall back to scalar together).
  StreamManagerOptions manager_options;
  manager_options.x2_dispatch = core::X2Dispatch::kSimd;
  StreamManager manager(manager_options);
  auto options = SmallWindow();
  ASSERT_OK(manager.CreateStream("s", Uniform(2), options));  // kAuto field.

  auto direct_options = options;
  direct_options.x2_dispatch = core::X2Dispatch::kSimd;
  auto model = seq::MultinomialModel::Uniform(2);
  auto direct =
      core::StreamingDetector::Make(model, direct_options).value();

  std::vector<uint8_t> stream = BurstStream(3, 2000, 250);
  ASSERT_OK(manager.Append("s", stream).status());
  direct.AppendChunk(stream);
  auto snapshot = manager.Snapshot("s");
  ASSERT_OK(snapshot.status());
  EXPECT_EQ(snapshot->chi_squares, direct.CurrentChiSquares());
  EXPECT_EQ(snapshot->alarms_total, direct.alarms_raised());
}

TEST(StreamManagerTest, ValidatesNamesAndModels) {
  StreamManager manager;
  EXPECT_TRUE(manager.CreateStream("", Uniform(2)).IsInvalidArgument());
  EXPECT_TRUE(manager.CreateStream("bad-model", {0.9, 0.3})
                  .IsInvalidArgument());
  core::StreamingDetector::Options bad;
  bad.max_window = 0;
  EXPECT_TRUE(manager.CreateStream("bad-options", Uniform(2), bad)
                  .IsInvalidArgument());
  ASSERT_OK(manager.CreateStream("s", Uniform(2)));
  EXPECT_TRUE(manager.CreateStream("s", Uniform(2)).IsInvalidArgument());
  EXPECT_TRUE(manager.Append("missing", std::vector<uint8_t>{0})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(manager.CloseStream("missing").IsNotFound());
  // Out-of-alphabet symbols are rejected without state change.
  auto rejected = manager.Append("s", std::vector<uint8_t>{0, 5});
  EXPECT_TRUE(rejected.status().IsInvalidArgument());
  EXPECT_EQ(manager.Snapshot("s")->position, 0);
}

TEST(StreamManagerTest, SharesOneContextPerDistinctModel) {
  StreamManager manager;
  ASSERT_OK(manager.CreateStream("a", Uniform(2)));
  ASSERT_OK(manager.CreateStream("b", Uniform(2)));
  ASSERT_OK(manager.CreateStream("c", {0.25, 0.75}));
  EXPECT_EQ(manager.context_count(), 2u);
  EXPECT_EQ(manager.StreamNames(),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StreamManagerTest, AppendBatchFansOutAndPreservesPerStreamOrder) {
  StreamManagerOptions options;
  options.num_threads = 4;  // Degrades to fewer workers on small hosts.
  StreamManager manager(options);
  const int kStreams = 3;
  std::vector<std::vector<uint8_t>> streams;
  for (int s = 0; s < kStreams; ++s) {
    ASSERT_OK(manager.CreateStream("stream-" + std::to_string(s), Uniform(2),
                                   SmallWindow()));
    streams.push_back(BurstStream(10 + static_cast<uint64_t>(s), 2000, 250));
  }

  // Interleave two chunks per stream in one batch; per-stream order is
  // first half then second half.
  std::vector<StreamAppend> batch;
  for (int half = 0; half < 2; ++half) {
    for (int s = 0; s < kStreams; ++s) {
      const std::vector<uint8_t>& all = streams[static_cast<size_t>(s)];
      size_t mid = all.size() / 2;
      StreamAppend append;
      append.name = "stream-" + std::to_string(s);
      append.symbols.assign(
          all.begin() + (half == 0 ? 0 : static_cast<int64_t>(mid)),
          half == 0 ? all.begin() + static_cast<int64_t>(mid) : all.end());
      batch.push_back(std::move(append));
    }
  }
  auto total = manager.AppendBatch(batch);
  ASSERT_OK(total.status());
  EXPECT_GT(*total, 0);

  // Every stream must match a standalone detector fed the same symbols
  // in order (order scrambling across the batch would change the window
  // trajectories and the alarm count).
  auto model = seq::MultinomialModel::Uniform(2);
  int64_t direct_total = 0;
  for (int s = 0; s < kStreams; ++s) {
    auto direct = core::StreamingDetector::Make(model, SmallWindow()).value();
    direct.AppendChunk(streams[static_cast<size_t>(s)]);
    auto snapshot = manager.Snapshot("stream-" + std::to_string(s));
    ASSERT_OK(snapshot.status());
    EXPECT_EQ(snapshot->position,
              static_cast<int64_t>(streams[static_cast<size_t>(s)].size()));
    EXPECT_EQ(snapshot->chi_squares, direct.CurrentChiSquares()) << s;
    direct_total += direct.alarms_raised();
  }
  // Chunk boundaries differ from the one-shot direct ingest, but the
  // detector is chunk-size invariant, so totals must agree exactly.
  EXPECT_EQ(*total, direct_total);
}

TEST(StreamManagerTest, AppendBatchRejectsUnknownStreamUpFront) {
  StreamManager manager;
  ASSERT_OK(manager.CreateStream("known", Uniform(2)));
  std::vector<StreamAppend> batch(2);
  batch[0].name = "known";
  batch[0].symbols = {0, 1, 0};
  batch[1].name = "unknown";
  batch[1].symbols = {1};
  EXPECT_TRUE(manager.AppendBatch(batch).status().IsNotFound());
  // Validation happens before any ingestion.
  EXPECT_EQ(manager.Snapshot("known")->position, 0);
}

TEST(StreamManagerTest, BoundedAlarmLogEvictsOldestButKeepsTotals) {
  StreamManagerOptions options;
  options.max_alarms_per_stream = 4;
  StreamManager manager(options);
  core::StreamingDetector::Options detector_options;
  detector_options.max_window = 16;
  detector_options.x2_threshold = 0.0;  // Alarm freely.
  detector_options.rearm_fraction = 2.0;
  ASSERT_OK(manager.CreateStream("s", {0.1, 0.9}, detector_options));
  std::vector<uint8_t> zeros(64, 0);  // Far from the {0.1, 0.9} model.
  auto alarms = manager.Append("s", zeros);
  ASSERT_OK(alarms.status());
  ASSERT_GT(*alarms, 4);
  auto snapshot = manager.Snapshot("s");
  ASSERT_OK(snapshot.status());
  EXPECT_EQ(snapshot->recent_alarms.size(), 4u);
  EXPECT_EQ(snapshot->alarms_total, *alarms);
  EXPECT_EQ(snapshot->alarms_dropped, *alarms - 4);
  // The retained tail is the newest alarms, still in stream order.
  for (size_t i = 1; i < snapshot->recent_alarms.size(); ++i) {
    EXPECT_LE(snapshot->recent_alarms[i - 1].end,
              snapshot->recent_alarms[i].end);
  }
}

TEST(StreamManagerRaceTest, CloseWhileAppendBatchStaysCoherent) {
  // Deterministic interleaving: a two-party barrier brackets each round,
  // so the CloseStream lands inside exactly one AppendBatch round — the
  // race window is pinned, not left to scheduler luck.
  constexpr int kRounds = 12;
  constexpr int kCloseRound = 5;
  constexpr int64_t kChunk = 256;

  StreamManager manager;
  const std::vector<std::string> names = {"a", "b", "victim", "d"};
  for (const auto& name : names) {
    ASSERT_OK(manager.CreateStream(name, Uniform(2), SmallWindow()));
  }
  std::vector<uint8_t> data = BurstStream(7, 2000, 300);
  data.resize(static_cast<size_t>(kRounds * kChunk), 0);

  std::barrier sync(2);
  std::vector<Status> round_status(kRounds, Status::OK());

  std::thread appender([&] {
    std::vector<std::string> targets = names;
    for (int round = 0; round < kRounds; ++round) {
      sync.arrive_and_wait();
      std::vector<StreamAppend> batch;
      for (const auto& name : targets) {
        StreamAppend append;
        append.name = name;
        append.symbols.assign(
            data.begin() + static_cast<int64_t>(round) * kChunk,
            data.begin() + static_cast<int64_t>(round + 1) * kChunk);
        batch.push_back(std::move(append));
      }
      round_status[static_cast<size_t>(round)] =
          manager.AppendBatch(batch).status();
      sync.arrive_and_wait();
      // Once the victim is gone, stop addressing it (a real producer
      // reacts to NotFound the same way).
      if (!manager.HasStream("victim")) {
        targets = {"a", "b", "d"};
      }
    }
  });
  std::thread closer([&] {
    for (int round = 0; round < kRounds; ++round) {
      sync.arrive_and_wait();
      if (round == kCloseRound) ASSERT_OK(manager.CloseStream("victim"));
      sync.arrive_and_wait();
    }
  });
  appender.join();
  closer.join();

  // Every round before the close succeeded; the close round itself is
  // allowed either outcome (append-first or close-first), but nothing
  // else: ok or NotFound, never a crash or partial write.
  for (int round = 0; round < kRounds; ++round) {
    const Status& status = round_status[static_cast<size_t>(round)];
    if (round < kCloseRound) {
      EXPECT_TRUE(status.ok()) << round << ": " << status.message();
    } else {
      EXPECT_TRUE(status.ok() || status.IsNotFound())
          << round << ": " << status.message();
    }
  }

  // AppendBatch validates names before ingesting anything, so each
  // surviving stream holds exactly its successful rounds' symbols.
  int64_t ok_rounds = 0;
  for (const auto& status : round_status) ok_rounds += status.ok() ? 1 : 0;
  for (const std::string name : {"a", "b", "d"}) {
    auto snapshot = manager.Snapshot(name);
    ASSERT_OK(snapshot.status());
    EXPECT_EQ(snapshot->position, ok_rounds * kChunk) << name;
  }
  EXPECT_FALSE(manager.HasStream("victim"));
  EXPECT_EQ(manager.open_stream_count(), 3u);
}

TEST(StreamManagerRaceTest, SnapshotUnderAppendSeesAtomicChunks) {
  constexpr int kRounds = 16;
  constexpr int64_t kChunk = 128;

  StreamManager manager;
  ASSERT_OK(manager.CreateStream("s", Uniform(2), SmallWindow()));
  std::vector<uint8_t> data = BurstStream(11, 1200, 200);
  data.resize(static_cast<size_t>(kRounds * kChunk), 0);

  // Each round, the append and the snapshot race inside the same
  // barrier-delimited window; the snapshot must observe either the
  // pre-append or the post-append state, never a torn middle.
  std::barrier sync(2);
  std::vector<StreamSnapshot> snapshots(kRounds);

  std::thread appender([&] {
    for (int round = 0; round < kRounds; ++round) {
      sync.arrive_and_wait();
      auto alarms = manager.AppendCollect(
          "s", std::vector<uint8_t>(
                   data.begin() + static_cast<int64_t>(round) * kChunk,
                   data.begin() + static_cast<int64_t>(round + 1) * kChunk));
      ASSERT_OK(alarms.status());
      sync.arrive_and_wait();
    }
  });
  std::thread snapshotter([&] {
    for (int round = 0; round < kRounds; ++round) {
      sync.arrive_and_wait();
      auto snapshot = manager.Snapshot("s");
      ASSERT_OK(snapshot.status());
      snapshots[static_cast<size_t>(round)] = *std::move(snapshot);
      sync.arrive_and_wait();
    }
  });
  appender.join();
  snapshotter.join();

  int64_t last_position = 0;
  int64_t last_alarms = 0;
  for (int round = 0; round < kRounds; ++round) {
    const StreamSnapshot& snapshot = snapshots[static_cast<size_t>(round)];
    // Chunk-atomic: the position is always a whole number of chunks, at
    // least the rounds already completed and at most the one in flight.
    EXPECT_EQ(snapshot.position % kChunk, 0) << round;
    EXPECT_GE(snapshot.position, static_cast<int64_t>(round) * kChunk);
    EXPECT_LE(snapshot.position, static_cast<int64_t>(round + 1) * kChunk);
    EXPECT_GE(snapshot.position, last_position) << round;
    EXPECT_GE(snapshot.alarms_total, last_alarms) << round;
    // The per-scale vectors are parallel views of one detector state.
    EXPECT_EQ(snapshot.scales.size(), snapshot.thresholds.size()) << round;
    EXPECT_EQ(snapshot.scales.size(), snapshot.chi_squares.size()) << round;
    last_position = snapshot.position;
    last_alarms = snapshot.alarms_total;
  }
  // The racing snapshots may trail the writer; a quiescent one may not.
  auto final_snapshot = manager.Snapshot("s");
  ASSERT_OK(final_snapshot.status());
  EXPECT_EQ(final_snapshot->position, static_cast<int64_t>(kRounds) * kChunk);
}

}  // namespace
}  // namespace engine
}  // namespace sigsub
