#include "engine/result_cache.h"

#include "gtest/gtest.h"

namespace sigsub {
namespace engine {
namespace {

CachedResult MakeResult(double chi_square) {
  CachedResult result;
  result.best = core::Substring{0, 1, chi_square};
  result.substrings = {result.best};
  result.match_count = 1;
  return result;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(4);
  CacheKey key{1, 2};
  EXPECT_FALSE(cache.Lookup(key).has_value());
  cache.Insert(key, MakeResult(5.0));
  auto hit = cache.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->best.chi_square, 5.0);

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.lookups(), 2);
}

TEST(ResultCacheTest, DistinctKeyComponentsMiss) {
  ResultCache cache(8);
  cache.Insert(CacheKey{1, 2}, MakeResult(1.0));
  EXPECT_TRUE(cache.Lookup(CacheKey{1, 2}).has_value());
  // Any differing component is a different query.
  EXPECT_FALSE(cache.Lookup(CacheKey{9, 2}).has_value());
  EXPECT_FALSE(cache.Lookup(CacheKey{1, 9}).has_value());
  // Permuted components must not alias.
  EXPECT_FALSE(cache.Lookup(CacheKey{2, 1}).has_value());
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  CacheKey a{1, 0}, b{2, 0}, c{3, 0};
  cache.Insert(a, MakeResult(1.0));
  cache.Insert(b, MakeResult(2.0));
  // Touch `a` so `b` becomes the LRU entry.
  EXPECT_TRUE(cache.Lookup(a).has_value());
  cache.Insert(c, MakeResult(3.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(a).has_value());
  EXPECT_FALSE(cache.Lookup(b).has_value());
  EXPECT_TRUE(cache.Lookup(c).has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(ResultCacheTest, ReinsertRefreshesValue) {
  ResultCache cache(2);
  CacheKey key{1, 1};
  cache.Insert(key, MakeResult(1.0));
  cache.Insert(key, MakeResult(7.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.Lookup(key)->best.chi_square, 7.0);
  EXPECT_EQ(cache.stats().insertions, 1);  // Refresh is not an insertion.
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  CacheKey key{1, 1};
  cache.Insert(key, MakeResult(1.0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(key).has_value());
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(ResultCacheTest, ClearResetsEntriesAndStats) {
  ResultCache cache(4);
  CacheKey key{1, 1};
  cache.Insert(key, MakeResult(1.0));
  EXPECT_TRUE(cache.Lookup(key).has_value());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  // Counters restart with the new cache generation: the pre-clear hit
  // and insertion must not leak into post-clear hit rates.
  CacheStats cleared = cache.stats();
  EXPECT_EQ(cleared.hits, 0);
  EXPECT_EQ(cleared.misses, 0);
  EXPECT_EQ(cleared.insertions, 0);
  EXPECT_EQ(cleared.evictions, 0);
  EXPECT_FALSE(cache.Lookup(key).has_value());
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(ResultCacheTest, ResetStatsKeepsEntries) {
  ResultCache cache(4);
  CacheKey key{2, 2};
  cache.Insert(key, MakeResult(3.0));
  EXPECT_TRUE(cache.Lookup(key).has_value());
  cache.ResetStats();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().lookups(), 0);
  // The entry survives and the post-reset hit is counted from zero.
  EXPECT_TRUE(cache.Lookup(key).has_value());
  EXPECT_EQ(cache.stats().hits, 1);
}

}  // namespace
}  // namespace engine
}  // namespace sigsub
