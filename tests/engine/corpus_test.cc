#include "engine/corpus.h"

#include <cstdio>
#include <string>

#include "gtest/gtest.h"
#include "io/csv.h"

namespace sigsub {
namespace engine {
namespace {

TEST(CorpusTest, FromStringsInfersSharedAlphabet) {
  auto corpus = Corpus::FromStrings({"0101", "2210", "00"});
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_EQ(corpus->size(), 3);
  // Distinct characters across *all* records: 0, 1, 2.
  EXPECT_EQ(corpus->alphabet().size(), 3);
  EXPECT_EQ(corpus->alphabet().characters(), "012");
  EXPECT_EQ(corpus->sequence(0).size(), 4);
  EXPECT_EQ(corpus->text(1), "2210");
}

TEST(CorpusTest, SkipsEmptyRecordsButKeepsSourceIndices) {
  auto corpus = Corpus::FromStrings({"01", "", "10"});
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->size(), 2);
  // Reports must cite the caller's record numbers, not post-skip ones.
  EXPECT_EQ(corpus->source_index(0), 0);
  EXPECT_EQ(corpus->source_index(1), 2);
}

TEST(CorpusTest, ErrorsCiteSourceIndices) {
  auto corpus = Corpus::FromStrings({"01", "", "012"}, "01");
  ASSERT_FALSE(corpus.ok());
  // The bad record is element 2 of the input, even though it is the
  // second non-empty record.
  EXPECT_NE(corpus.status().message().find("record 2"), std::string::npos);
}

TEST(CorpusTest, AllEmptyIsError) {
  EXPECT_TRUE(Corpus::FromStrings({}).status().IsInvalidArgument());
  EXPECT_TRUE(Corpus::FromStrings({"", ""}).status().IsInvalidArgument());
}

TEST(CorpusTest, UnaryCorpusPadsAlphabet) {
  auto corpus = Corpus::FromStrings({"0000", "00"});
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->alphabet().size(), 2);  // X² needs k >= 2.
}

TEST(CorpusTest, ExplicitAlphabetRejectsForeignSymbols) {
  auto corpus = Corpus::FromStrings({"0101", "012"}, "01");
  ASSERT_FALSE(corpus.ok());
  EXPECT_TRUE(corpus.status().IsInvalidArgument());
  // The error names the offending record.
  EXPECT_NE(corpus.status().message().find("record 1"), std::string::npos);
}

TEST(CorpusTest, FromLinesReadsFileAndStripsCr) {
  std::string path = ::testing::TempDir() + "/corpus_lines.txt";
  ASSERT_TRUE(io::WriteTextFile(path, "0101\r\n1100\n\n").ok());
  auto corpus = Corpus::FromLines(path);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_EQ(corpus->size(), 2);
  EXPECT_EQ(corpus->text(0), "0101");
  EXPECT_EQ(corpus->text(1), "1100");
  std::remove(path.c_str());
}

TEST(CorpusTest, FromLinesMissingFileIsIOError) {
  EXPECT_TRUE(Corpus::FromLines("/no/such/corpus").status().IsIOError());
}

TEST(CorpusTest, FromLinesStripsUtf8Bom) {
  // Editors on Windows routinely prepend a UTF-8 BOM. Left in place it
  // reaches alphabet inference, silently adding three junk symbols
  // (EF BB BF) that shrink every p_c and skew every X² on the corpus.
  std::string path = ::testing::TempDir() + "/corpus_bom.txt";
  ASSERT_TRUE(io::WriteTextFile(path, "\xEF\xBB\xBF" "0101\n1100\n").ok());
  auto corpus = Corpus::FromLines(path);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_EQ(corpus->alphabet().characters(), "01");
  EXPECT_EQ(corpus->text(0), "0101");
  EXPECT_EQ(corpus->sequence(0).size(), 4);
  std::remove(path.c_str());
}

TEST(CorpusTest, FromLinesBomOnlyOnFirstLineIsStripped) {
  // Only a leading BOM is a byte-order mark; the same bytes later in the
  // file are (unusual but legitimate) data and must be preserved.
  std::string path = ::testing::TempDir() + "/corpus_bom_mid.txt";
  ASSERT_TRUE(io::WriteTextFile(
                  path, "\xEF\xBB\xBF" "01\n\xEF\xBB\xBF" "10\n")
                  .ok());
  auto corpus = Corpus::FromLines(path);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_EQ(corpus->text(0), "01");
  EXPECT_EQ(corpus->text(1), "\xEF\xBB\xBF" "10");
  EXPECT_EQ(corpus->alphabet().size(), 5);  // 0, 1, and the three BOM bytes.
  std::remove(path.c_str());
}

TEST(CorpusTest, FromCsvColumnSelectsAndSkipsHeader) {
  std::string path = ::testing::TempDir() + "/corpus.csv";
  ASSERT_TRUE(io::WriteTextFile(
                  path, "id,series\na,0101\nb,\"11,00\"\n")
                  .ok());
  auto corpus = Corpus::FromCsvColumn(path, 1, /*has_header=*/true);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_EQ(corpus->size(), 2);
  EXPECT_EQ(corpus->text(0), "0101");
  EXPECT_EQ(corpus->text(1), "11,00");  // Quoted cell round-trips.
  std::remove(path.c_str());
}

TEST(CorpusTest, FromCsvColumnValidates) {
  std::string path = ::testing::TempDir() + "/corpus_bad.csv";
  ASSERT_TRUE(io::WriteTextFile(path, "a,b\nc\n").ok());
  // Row 1 has no column 1.
  EXPECT_TRUE(Corpus::FromCsvColumn(path, 1, false)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Corpus::FromCsvColumn(path, -1, false)
                  .status()
                  .IsInvalidArgument());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace engine
}  // namespace sigsub
