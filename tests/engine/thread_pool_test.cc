#include "engine/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace sigsub {
namespace engine {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int64_t> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int64_t> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int64_t> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 50 * (round + 1));
  }
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  ThreadPool pool(3);
  std::atomic<int64_t> counter{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.Submit([&counter] { counter.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPoolTest, UnevenTasksAreStolen) {
  // Round-robin placement puts the long tasks on a subset of deques; the
  // other workers must steal to finish the batch promptly. We only assert
  // completion plus at least one steal over a skewed workload.
  ThreadPool pool(4);
  std::atomic<int64_t> counter{0};
  for (int i = 0; i < 64; ++i) {
    int spin = (i % 4 == 0) ? 200000 : 10;
    pool.Submit([&counter, spin] {
      volatile int64_t sink = 0;
      for (int j = 0; j < spin; ++j) sink += j;
      counter.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, SubmitFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int64_t> counter{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < 250; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int64_t> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace engine
}  // namespace sigsub
