// The umbrella-header contract: this TU includes ONLY sigsub.h and
// touches at least one symbol from every subsystem (and every stats
// header), so a header dropped from — or broken inside — the umbrella
// fails this build instead of silently rotting.

#include "sigsub.h"

#include "gtest/gtest.h"

namespace sigsub {
namespace {

TEST(UmbrellaTest, EverySubsystemIsReachable) {
  // common/ — the error model, checks, annotated locking.
  EXPECT_TRUE(Status::OK().ok());
  Fnv1a hasher;
  hasher.UpdateI64(42);
  EXPECT_NE(hasher.Digest(), 0u);
  SIGSUB_CHECK(true);
  SIGSUB_DCHECK_MSG(true, "umbrella reaches check.h");
  Mutex mutex;
  {
    MutexLock lock(mutex);
  }
  CondVar().NotifyAll();

  // seq/ — alphabets, sequences, models, generators, grids.
  seq::Alphabet alphabet = seq::Alphabet::Binary();
  EXPECT_EQ(alphabet.size(), 2);
  seq::Rng rng(7);
  seq::Sequence sequence = seq::GenerateNull(2, 64, rng);
  seq::PrefixCounts counts(sequence);
  EXPECT_EQ(counts.sequence_size(), 64);
  seq::MultinomialModel model = seq::MultinomialModel::Uniform(2);
  EXPECT_EQ(model.alphabet_size(), 2);
  EXPECT_EQ(seq::MarkovModel::BiasedBinary(0.5).alphabet_size(), 2);
  auto grid = seq::Grid::Make(2, 2, 2);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->rows(), 2);

  // core/ — the scanners and their support types.
  EXPECT_EQ(core::TrivialScanPositions(4), 10);
  auto mss = core::FindMss(sequence, model);
  ASSERT_TRUE(mss.ok());
  EXPECT_LE(core::SubstringPValue(mss->best.chi_square, 2), 1.0);
  EXPECT_TRUE(core::FindTopT(sequence, model, 2).ok());
  EXPECT_TRUE(core::FindAboveThreshold(sequence, model, 1e6).ok());
  EXPECT_TRUE(core::FindMssMinLength(sequence, model, 2).ok());
  EXPECT_TRUE(core::FindMssLengthBounded(sequence, model, 1, 8).ok());
  EXPECT_TRUE(core::FindMssArlm(sequence, model).ok());
  EXPECT_TRUE(core::FindMssAgmm(sequence, model).ok());
  EXPECT_TRUE(core::FindMssBlocked(sequence, model).ok());
  (void)core::SimdAvailable();
  core::ChiSquareContext context(model);
  core::X2Kernel kernel(context);
  EXPECT_EQ(kernel.alphabet_size(), 2);
  EXPECT_EQ(core::StreamingDetector::Options{}.max_window, 4096);

  // api/ — typed queries, serde, fingerprints.
  api::QuerySpec spec;
  spec.request = api::TopTQuery{3};
  auto parsed = api::ParseQuery(api::FormatQuery(spec));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, spec);
  EXPECT_EQ(api::FingerprintQuery(spec), api::FingerprintQuery(*parsed));

  // engine/ — corpus, engine, jobs, cache, streams.
  auto corpus = engine::Corpus::FromStrings({"0101011111", "0000011111"});
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(engine::JobKindToString(engine::JobKind::kMss), "mss");
  engine::Engine engine({.num_threads = 1, .cache_capacity = 4});
  auto results = engine.ExecuteQueries(*corpus, {spec});
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);
  EXPECT_NE(engine::FingerprintSequence(corpus->sequence(0)), 0u);
  engine::ResultCache cache(2);
  EXPECT_EQ(cache.capacity(), 2u);
  engine::StreamManager manager({.num_threads = 1});
  EXPECT_TRUE(manager.StreamNames().empty());
  engine::EngineStats stats = engine::CollectEngineStats(&engine, &manager);
  EXPECT_EQ(stats.batches_executed, 1);

  // common/posix_io.h + server/ — the daemon, its client, its protocol.
  IgnoreSigpipe();
  EXPECT_GE(MonotonicMillis(), 0);
  EXPECT_EQ(server::protocol::ErrorCodeName(
                server::protocol::ErrorCode::kBusy),
            "EBUSY");
  EXPECT_TRUE(
      server::protocol::IsEngineBound(server::protocol::CommandKind::kQuery));
  server::ServerOptions server_options;
  EXPECT_EQ(server_options.host, "127.0.0.1");
  server::Server daemon(*corpus, server_options);
  ASSERT_TRUE(daemon.Start().ok());
  auto client =
      server::LineClient::Connect("127.0.0.1", daemon.port(), 2000);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->SendLine("PING").ok());
  auto pong = client->ReadLine(2000);
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, "OK pong");
  EXPECT_EQ(daemon.stats().connections_accepted, 1);

  // io/ — csv, dates, codecs, tables, simulators.
  EXPECT_EQ(io::ParseCsvLine("a,b").size(), 2u);
  EXPECT_EQ(io::DaysInMonth(2024, 2), 29);
  EXPECT_TRUE(io::ParseBinaryString("0101").ok());
  io::TableWriter table({"col"});
  table.AddRow({"x"});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_TRUE(io::MarketSeries::Generate(io::MarketConfig{}).ok());
  EXPECT_TRUE(io::RivalrySeries::Generate(io::RivalryConfig{}).ok());

  // stats/ — one symbol per header.
  EXPECT_GT(stats::ChiSquaredDistribution(1).CriticalValue(0.05), 3.8);
  EXPECT_GE(stats::PearsonChiSquare(std::vector<int64_t>{2, 2},
                                    std::vector<double>{0.5, 0.5}),
            0.0);
  EXPECT_NEAR(stats::LogBeta(1.0, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(stats::LogBinomialCoefficient(4, 2), 1.791759469228055,
              1e-9);
  EXPECT_NEAR(stats::Mean(std::vector<double>{1.0, 3.0}), 2.0, 1e-12);
  EXPECT_GE(stats::MultinomialConfigurationCount(2, 2), 1);
  EXPECT_NEAR(stats::LogGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(stats::StandardNormalCdf(0.0), 0.5, 1e-12);
}

}  // namespace
}  // namespace sigsub
