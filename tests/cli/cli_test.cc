#include "cli/cli.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "io/csv.h"

namespace sigsub {
namespace cli {
namespace {

TEST(ParseArgsTest, RequiresCommand) {
  EXPECT_TRUE(ParseArgs({}).status().IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"bogus"}).status().IsInvalidArgument());
}

TEST(ParseArgsTest, RequiresInput) {
  EXPECT_TRUE(ParseArgs({"mss"}).status().IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"mss", "--string=01", "--input=x"})
                  .status()
                  .IsInvalidArgument());
}

TEST(ParseArgsTest, ParsesFlags) {
  auto options = ParseArgs({"topt", "--string=0110", "--t=5", "--disjoint",
                            "--probs=0.25,0.75", "--alphabet=01",
                            "--min-length=3", "--threads=2"});
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->command, "topt");
  EXPECT_EQ(options->input_text, "0110");
  EXPECT_EQ(options->t, 5);
  EXPECT_TRUE(options->disjoint);
  EXPECT_EQ(options->probs, (std::vector<double>{0.25, 0.75}));
  EXPECT_EQ(options->alphabet, "01");
  EXPECT_EQ(options->min_length, 3);
  EXPECT_EQ(options->threads, 2);
}

TEST(ParseArgsTest, RejectsMalformedValues) {
  EXPECT_TRUE(ParseArgs({"mss", "--string=01", "--t=abc"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"mss", "--string=01", "--probs=0.5,x"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"mss", "--string=01", "--bogus=1"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"mss", "string=01"}).status().IsInvalidArgument());
}

TEST(RunTest, MssOnLiteralString) {
  auto options = ParseArgs({"mss", "--string=0101011111111110101"});
  ASSERT_TRUE(options.ok());
  auto report = cli::Run(options.value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The run of ones must be the reported window.
  EXPECT_NE(report->find("111111111"), std::string::npos);
  EXPECT_NE(report->find("X2"), std::string::npos);
}

TEST(RunTest, InfersAlphabetFromInput) {
  auto options = ParseArgs({"mss", "--string=acgtacgtaaaaaaa"});
  ASSERT_TRUE(options.ok());
  auto report = cli::Run(options.value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("k = 4"), std::string::npos);
}

TEST(RunTest, ExplicitProbsChangeScores) {
  auto uniform = cli::Run(ParseArgs({"score", "--string=1111100000",
                                "--start=0", "--end=5"})
                         .value());
  auto skewed = cli::Run(ParseArgs({"score", "--string=1111100000",
                               "--probs=0.9,0.1", "--start=0", "--end=5"})
                        .value());
  ASSERT_TRUE(uniform.ok());
  ASSERT_TRUE(skewed.ok());
  EXPECT_NE(*uniform, *skewed);
}

TEST(RunTest, ThresholdFromPValue) {
  auto options =
      ParseArgs({"threshold", "--string=0101010111111111111111010101",
                 "--pvalue=0.001"});
  ASSERT_TRUE(options.ok());
  auto report = cli::Run(options.value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("alpha0"), std::string::npos);
}

TEST(RunTest, ThresholdRequiresAlphaOrPValue) {
  auto options = ParseArgs({"threshold", "--string=0101"});
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(cli::Run(options.value()).status().IsInvalidArgument());
}

TEST(RunTest, ToptDisjointReturnsRankedRows) {
  auto options = ParseArgs(
      {"topt", "--string=000000001111111100000000111111110000000", "--t=2",
       "--disjoint", "--min-length=4"});
  ASSERT_TRUE(options.ok());
  auto report = cli::Run(options.value());
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("rank"), std::string::npos);
  EXPECT_NE(report->find("1 "), std::string::npos);
}

TEST(RunTest, MinlenRespectsFloor) {
  auto options = ParseArgs(
      {"minlen", "--string=01010111111010101010101010", "--min-length=10"});
  ASSERT_TRUE(options.ok());
  auto report = cli::Run(options.value());
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("length"), std::string::npos);
}

TEST(RunTest, ScoreValidatesBounds) {
  auto options =
      ParseArgs({"score", "--string=0101", "--start=2", "--end=9"});
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(cli::Run(options.value()).status().IsOutOfRange());
}

TEST(RunTest, ReadsInputFromFile) {
  std::string path = ::testing::TempDir() + "/sigsub_cli_input.txt";
  ASSERT_TRUE(io::WriteTextFile(path, "00000111111111110000\n").ok());
  auto options = ParseArgs({"mss", std::string("--input=") + path});
  ASSERT_TRUE(options.ok());
  auto report = cli::Run(options.value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("n = 20"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RunTest, MissingFileIsIOError) {
  auto options = ParseArgs({"mss", "--input=/no/such/file"});
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(cli::Run(options.value()).status().IsIOError());
}

TEST(RunTest, EmptyStringRejected) {
  auto options = ParseArgs({"mss", "--string="});
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(cli::Run(options.value()).status().IsInvalidArgument());
}

TEST(RunTest, ParallelMssMatchesDefault) {
  std::string input = "--string=01101010111111111101010101010010101";
  auto single = cli::Run(ParseArgs({"mss", input, "--threads=1"}).value());
  auto multi = cli::Run(ParseArgs({"mss", input, "--threads=4"}).value());
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(multi.ok());
  // The reported substring (and hence the report up to the work counter,
  // which legitimately differs across thread counts) must agree: this
  // input has a unique maximum.
  auto table_part = [](const std::string& report) {
    return report.substr(0, report.find("examined"));
  };
  EXPECT_EQ(table_part(*single), table_part(*multi));
}

TEST(UsageTest, MentionsAllCommands) {
  std::string usage = UsageText();
  for (const char* command :
       {"mss", "topt", "threshold", "minlen", "score"}) {
    EXPECT_NE(usage.find(command), std::string::npos) << command;
  }
}

}  // namespace
}  // namespace cli
}  // namespace sigsub
