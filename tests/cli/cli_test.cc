#include "cli/cli.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "common/str_util.h"
#include "engine/corpus.h"
#include "io/csv.h"
#include "server/server.h"

namespace sigsub {
namespace cli {
namespace {

TEST(ParseArgsTest, RequiresCommand) {
  EXPECT_TRUE(ParseArgs({}).status().IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"bogus"}).status().IsInvalidArgument());
}

TEST(ParseArgsTest, RequiresInput) {
  EXPECT_TRUE(ParseArgs({"mss"}).status().IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"mss", "--string=01", "--input=x"})
                  .status()
                  .IsInvalidArgument());
}

TEST(ParseArgsTest, ParsesFlags) {
  auto options = ParseArgs({"topt", "--string=0110", "--t=5", "--disjoint",
                            "--probs=0.25,0.75", "--alphabet=01",
                            "--min-length=3"});
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->command, "topt");
  EXPECT_EQ(options->input_text, "0110");
  EXPECT_EQ(options->t, 5);
  EXPECT_TRUE(options->disjoint);
  EXPECT_EQ(options->probs, (std::vector<double>{0.25, 0.75}));
  EXPECT_EQ(options->alphabet, "01");
  EXPECT_EQ(options->min_length, 3);
}

TEST(ParseArgsTest, ParsesBatchFlags) {
  auto options = ParseArgs({"batch", "--input=corpus.csv", "--job=topt",
                            "--format=csv", "--column=2", "--csv-header",
                            "--threads=4", "--cache=16", "--t=3"});
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->command, "batch");
  EXPECT_EQ(options->job, "topt");
  EXPECT_EQ(options->format, "csv");
  EXPECT_EQ(options->column, 2);
  EXPECT_TRUE(options->csv_header);
  EXPECT_EQ(options->threads, 4);
  EXPECT_EQ(options->cache, 16);
  EXPECT_EQ(options->t, 3);
}

TEST(ParseArgsTest, RejectsFlagInvalidForCommand) {
  // --threads is consumed by mss and batch only; every other command must
  // reject it loudly instead of silently ignoring it.
  auto status = ParseArgs({"topt", "--string=0110", "--threads=2"}).status();
  ASSERT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("--threads"), std::string::npos);
  EXPECT_NE(status.message().find("topt"), std::string::npos);
  EXPECT_TRUE(ParseArgs({"mss", "--string=01", "--t=3"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"score", "--string=01", "--alpha0=1"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"threshold", "--string=01", "--job=mss"})
                  .status()
                  .IsInvalidArgument());
}

TEST(ParseArgsTest, BatchValidation) {
  EXPECT_TRUE(
      ParseArgs({"batch", "--string=0101"}).status().IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"batch"}).status().IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"batch", "--input=x", "--job=bogus"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"batch", "--input=x", "--format=bogus"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"batch", "--input=x", "--cache=-1"})
                  .status()
                  .IsInvalidArgument());
  // CSV-shaping flags only make sense with --format=csv.
  EXPECT_TRUE(ParseArgs({"batch", "--input=x", "--column=1"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"batch", "--input=x", "--csv-header"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ParseArgs({"batch", "--input=x", "--format=csv", "--column=1"}).ok());
  // Job-parameter flags must match the selected --job.
  EXPECT_TRUE(ParseArgs({"batch", "--input=x", "--job=mss", "--pvalue=0.01"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"batch", "--input=x", "--t=3", "--job=threshold",
                         "--alpha0=5"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"batch", "--input=x", "--job=disjoint", "--t=3",
                         "--min-length=4"})
                  .ok());
  // topt only consumes --min-length together with --disjoint.
  EXPECT_TRUE(ParseArgs({"topt", "--string=01", "--min-length=3"})
                  .status()
                  .IsInvalidArgument());
}

TEST(ParseArgsTest, RejectsMalformedValues) {
  EXPECT_TRUE(ParseArgs({"mss", "--string=01", "--t=abc"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"mss", "--string=01", "--probs=0.5,x"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"mss", "--string=01", "--bogus=1"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"mss", "string=01"}).status().IsInvalidArgument());
}

TEST(ParseArgsTest, RejectsOutOfRangeIntegers) {
  // strtoll clamps to LLONG_MAX on overflow; the parser must reject the
  // flag instead of silently mining with a clamped value.
  auto status =
      ParseArgs({"topt", "--string=01", "--t=99999999999999999999"}).status();
  ASSERT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("--t"), std::string::npos);
  EXPECT_TRUE(ParseArgs({"topt", "--string=01", "--t=-99999999999999999999"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"batch", "--input=x",
                         "--cache=123456789012345678901234567890"})
                  .status()
                  .IsInvalidArgument());
  // Values inside the 64-bit range still parse.
  auto ok = ParseArgs({"topt", "--string=01", "--t=9223372036854775807"});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->t, 9223372036854775807LL);
}

TEST(ParseArgsTest, RejectsOverflowingAndGarbageDoubles) {
  EXPECT_TRUE(ParseArgs({"threshold", "--string=01", "--alpha0=1e999"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"threshold", "--string=01", "--alpha0=-1e999"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"threshold", "--string=01", "--alpha0=1.5x"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"threshold", "--string=01", "--alpha0="})
                  .status()
                  .IsInvalidArgument());
  // A denormal underflow is a faithful rounding, not an error.
  EXPECT_TRUE(ParseArgs({"threshold", "--string=01", "--alpha0=1e-320"}).ok());
}

TEST(ParseArgsTest, ParsesShardMin) {
  auto options =
      ParseArgs({"batch", "--input=x", "--threads=4", "--shard-min=5000"});
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->shard_min, 5000);
  // batch-only flag.
  EXPECT_TRUE(ParseArgs({"mss", "--string=01", "--shard-min=10"})
                  .status()
                  .IsInvalidArgument());
}

TEST(ParseArgsTest, ParsesX2Dispatch) {
  // Common flag: every command accepts it.
  auto scalar = ParseArgs({"mss", "--string=01", "--x2-dispatch=scalar"});
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(scalar->x2_dispatch, core::X2Dispatch::kScalar);
  auto simd =
      ParseArgs({"batch", "--input=x", "--x2-dispatch=simd"});
  ASSERT_TRUE(simd.ok());
  EXPECT_EQ(simd->x2_dispatch, core::X2Dispatch::kSimd);
  auto deflt = ParseArgs({"score", "--string=01", "--start=0", "--end=1"});
  ASSERT_TRUE(deflt.ok());
  EXPECT_EQ(deflt->x2_dispatch, core::X2Dispatch::kAuto);
  // Unknown modes are loud, and name the flag.
  auto status =
      ParseArgs({"mss", "--string=01", "--x2-dispatch=avx512"}).status();
  ASSERT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("--x2-dispatch"), std::string::npos);
}

/// Drops the "x2 dispatch: ..." report line an explicit --x2-dispatch
/// adds, so dispatch modes can be compared on their mining output alone.
std::string StripDispatchReport(const std::string& report) {
  if (report.rfind("x2 dispatch:", 0) != 0) return report;
  return report.substr(report.find('\n') + 1);
}

TEST(RunTest, X2DispatchModesAgreeOnBestSubstring) {
  // A reproducibility audit pins --x2-dispatch=scalar; the report must
  // carry the same best substring the default (auto, possibly SIMD)
  // dispatch finds. The dispatch-report banner names the mode, so it is
  // stripped before comparing.
  const char* input = "--string=001011111111101001100100";
  auto auto_report = cli::Run(
      ParseArgs({"mss", input, "--x2-dispatch=auto"}).value());
  auto scalar_report = cli::Run(
      ParseArgs({"mss", input, "--x2-dispatch=scalar"}).value());
  auto simd_report = cli::Run(
      ParseArgs({"mss", input, "--x2-dispatch=simd"}).value());
  ASSERT_TRUE(auto_report.ok());
  ASSERT_TRUE(scalar_report.ok());
  ASSERT_TRUE(simd_report.ok());
  EXPECT_EQ(StripDispatchReport(*auto_report),
            StripDispatchReport(*scalar_report));
  EXPECT_EQ(StripDispatchReport(*auto_report),
            StripDispatchReport(*simd_report));
}

TEST(RunTest, ExplicitDispatchReportsEffectiveKernel) {
  // --x2-dispatch=simd must never degrade silently: the report either
  // confirms the SIMD kernel is active or carries the fallback warning,
  // depending on what this host supports (both wordings covered; which
  // branch runs follows core::SimdAvailable()).
  auto simd = cli::Run(
      ParseArgs({"mss", "--string=0101011111", "--x2-dispatch=simd"})
          .value());
  ASSERT_TRUE(simd.ok());
  if (core::SimdAvailable()) {
    EXPECT_NE(simd->find("x2 dispatch: simd (AVX2 active)"),
              std::string::npos)
        << *simd;
    EXPECT_EQ(simd->find("WARNING"), std::string::npos) << *simd;
  } else {
    EXPECT_NE(simd->find("WARNING: simd requested but AVX2 is unavailable"),
              std::string::npos)
        << *simd;
    EXPECT_NE(simd->find("x2 dispatch: scalar"), std::string::npos) << *simd;
  }
  auto scalar = cli::Run(
      ParseArgs({"mss", "--string=0101011111", "--x2-dispatch=scalar"})
          .value());
  ASSERT_TRUE(scalar.ok());
  EXPECT_NE(scalar->find("x2 dispatch: scalar (bit-reproducible)"),
            std::string::npos)
      << *scalar;
  // Without the explicit flag there is no dispatch banner.
  auto silent = cli::Run(ParseArgs({"mss", "--string=0101011111"}).value());
  ASSERT_TRUE(silent.ok());
  EXPECT_EQ(silent->find("x2 dispatch:"), std::string::npos) << *silent;
}

TEST(RunTest, MssOnLiteralString) {
  auto options = ParseArgs({"mss", "--string=0101011111111110101"});
  ASSERT_TRUE(options.ok());
  auto report = cli::Run(options.value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The run of ones must be the reported window.
  EXPECT_NE(report->find("111111111"), std::string::npos);
  EXPECT_NE(report->find("X2"), std::string::npos);
}

TEST(RunTest, InfersAlphabetFromInput) {
  auto options = ParseArgs({"mss", "--string=acgtacgtaaaaaaa"});
  ASSERT_TRUE(options.ok());
  auto report = cli::Run(options.value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("k = 4"), std::string::npos);
}

TEST(RunTest, ExplicitProbsChangeScores) {
  auto uniform = cli::Run(ParseArgs({"score", "--string=1111100000",
                                "--start=0", "--end=5"})
                         .value());
  auto skewed = cli::Run(ParseArgs({"score", "--string=1111100000",
                               "--probs=0.9,0.1", "--start=0", "--end=5"})
                        .value());
  ASSERT_TRUE(uniform.ok());
  ASSERT_TRUE(skewed.ok());
  EXPECT_NE(*uniform, *skewed);
}

TEST(RunTest, ThresholdFromPValue) {
  auto options =
      ParseArgs({"threshold", "--string=0101010111111111111111010101",
                 "--pvalue=0.001"});
  ASSERT_TRUE(options.ok());
  auto report = cli::Run(options.value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("alpha0"), std::string::npos);
}

TEST(RunTest, ThresholdRequiresAlphaOrPValue) {
  auto options = ParseArgs({"threshold", "--string=0101"});
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(cli::Run(options.value()).status().IsInvalidArgument());
}

TEST(RunTest, ToptDisjointReturnsRankedRows) {
  auto options = ParseArgs(
      {"topt", "--string=000000001111111100000000111111110000000", "--t=2",
       "--disjoint", "--min-length=4"});
  ASSERT_TRUE(options.ok());
  auto report = cli::Run(options.value());
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("rank"), std::string::npos);
  EXPECT_NE(report->find("1 "), std::string::npos);
}

TEST(RunTest, MinlenRespectsFloor) {
  auto options = ParseArgs(
      {"minlen", "--string=01010111111010101010101010", "--min-length=10"});
  ASSERT_TRUE(options.ok());
  auto report = cli::Run(options.value());
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("length"), std::string::npos);
}

TEST(RunTest, ScoreValidatesBounds) {
  auto options =
      ParseArgs({"score", "--string=0101", "--start=2", "--end=9"});
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(cli::Run(options.value()).status().IsOutOfRange());
}

TEST(RunTest, ReadsInputFromFile) {
  std::string path = ::testing::TempDir() + "/sigsub_cli_input.txt";
  ASSERT_TRUE(io::WriteTextFile(path, "00000111111111110000\n").ok());
  auto options = ParseArgs({"mss", std::string("--input=") + path});
  ASSERT_TRUE(options.ok());
  auto report = cli::Run(options.value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("n = 20"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RunTest, MissingFileIsIOError) {
  auto options = ParseArgs({"mss", "--input=/no/such/file"});
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(cli::Run(options.value()).status().IsIOError());
}

TEST(RunTest, EmptyStringRejected) {
  auto options = ParseArgs({"mss", "--string="});
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(cli::Run(options.value()).status().IsInvalidArgument());
}

TEST(RunTest, ParallelMssMatchesDefault) {
  std::string input = "--string=01101010111111111101010101010010101";
  auto single = cli::Run(ParseArgs({"mss", input, "--threads=1"}).value());
  auto multi = cli::Run(ParseArgs({"mss", input, "--threads=4"}).value());
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(multi.ok());
  // The reported substring (and hence the report up to the work counter,
  // which legitimately differs across thread counts) must agree: this
  // input has a unique maximum.
  auto table_part = [](const std::string& report) {
    return report.substr(0, report.find("examined"));
  };
  EXPECT_EQ(table_part(*single), table_part(*multi));
}

TEST(BatchTest, LinesCorpusRoundTrip) {
  std::string path = ::testing::TempDir() + "/sigsub_cli_corpus.txt";
  ASSERT_TRUE(io::WriteTextFile(
                  path, "0101011111111110101\n0000000000111111\n")
                  .ok());
  auto options =
      ParseArgs({"batch", std::string("--input=") + path, "--threads=2"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  auto report = cli::Run(options.value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // One row per record, and a cache summary.
  EXPECT_NE(report->find("corpus: 2 records"), std::string::npos);
  EXPECT_NE(report->find("\n0 "), std::string::npos);
  EXPECT_NE(report->find("\n1 "), std::string::npos);
  EXPECT_NE(report->find("cache:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BatchTest, X2DispatchReachesEngine) {
  // The knob is plumbed through EngineOptions: a scalar-pinned batch and
  // the default batch must render identical reports on the same corpus.
  std::string path = ::testing::TempDir() + "/sigsub_cli_dispatch.txt";
  ASSERT_TRUE(io::WriteTextFile(
                  path, "0101011111111110101\n0000000000111111\n")
                  .ok());
  std::string input = std::string("--input=") + path;
  auto scalar = cli::Run(
      ParseArgs({"batch", input, "--x2-dispatch=scalar"}).value());
  auto auto_mode = cli::Run(
      ParseArgs({"batch", input, "--x2-dispatch=auto"}).value());
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
  ASSERT_TRUE(auto_mode.ok()) << auto_mode.status().ToString();
  EXPECT_EQ(StripDispatchReport(*scalar), StripDispatchReport(*auto_mode));
  std::remove(path.c_str());
}

TEST(BatchTest, CsvCorpusRoundTrip) {
  std::string path = ::testing::TempDir() + "/sigsub_cli_corpus.csv";
  ASSERT_TRUE(
      io::WriteTextFile(path, "name,series\nr1,0101011111\nr2,0000011111\n")
          .ok());
  auto options = ParseArgs({"batch", std::string("--input=") + path,
                            "--format=csv", "--column=1", "--csv-header",
                            "--job=minlen", "--min-length=4"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  auto report = cli::Run(options.value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("corpus: 2 records"), std::string::npos);
  EXPECT_NE(report->find("job = minlen"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BatchTest, MatchesSingleStringCommand) {
  // The batch engine must report the same MSS window the one-shot `mss`
  // command reports for the same record.
  std::string text = "0101011111111110101";
  std::string path = ::testing::TempDir() + "/sigsub_cli_one.txt";
  ASSERT_TRUE(io::WriteTextFile(path, text + "\n").ok());
  auto single =
      cli::Run(ParseArgs({"mss", std::string("--string=") + text}).value());
  auto batch =
      cli::Run(ParseArgs({"batch", std::string("--input=") + path}).value());
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(batch.ok());
  // The one-shot report prints "5  15  10  10.0000"; the batch table
  // must contain the same start/end/X² triple.
  EXPECT_NE(single->find("10.0000"), std::string::npos);
  EXPECT_NE(batch->find("10.0000"), std::string::npos);
  EXPECT_NE(batch->find("15"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SubstringsTest, ParsesFlagsAndValidates) {
  auto options = ParseArgs({"substrings", "--string=abab", "--top=0",
                            "--min-length=2", "--max-length=8",
                            "--min-count=3", "--all", "--positions"});
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->top, 0);
  EXPECT_EQ(options->min_length, 2);
  EXPECT_EQ(options->max_length, 8);
  EXPECT_EQ(options->min_count, 3);
  EXPECT_TRUE(options->all_substrings);
  EXPECT_TRUE(options->positions);
  // --all without a length cap would enumerate O(n²) substrings.
  EXPECT_TRUE(ParseArgs({"substrings", "--string=abab", "--all"})
                  .status()
                  .IsInvalidArgument());
  // --mmap maps a file, so --string cannot feed it.
  EXPECT_TRUE(ParseArgs({"substrings", "--string=abab", "--mmap"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"substrings", "--string=abab", "--alpha-p=2"})
                  .status()
                  .IsInvalidArgument());
  // The flag set is substrings-specific; a foreign flag is rejected.
  EXPECT_TRUE(ParseArgs({"substrings", "--string=abab", "--t=3"})
                  .status()
                  .IsInvalidArgument());
}

TEST(SubstringsTest, ReportsCountsAndText) {
  // "ababab": "ab" occurs 3 times and is class-maximal up front.
  auto options = ParseArgs({"substrings", "--string=abababab",
                            "--min-length=2", "--min-count=2"});
  ASSERT_TRUE(options.ok());
  auto report = cli::Run(options.value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("n = 8, k = 2"), std::string::npos) << *report;
  EXPECT_NE(report->find("\"abab\""), std::string::npos) << *report;
  EXPECT_NE(report->find("cache:"), std::string::npos) << *report;
}

TEST(SubstringsTest, PositionsListsOccurrences) {
  auto options = ParseArgs({"substrings", "--string=abababab", "--top=1",
                            "--min-length=2", "--min-count=3",
                            "--max-length=2", "--positions"});
  ASSERT_TRUE(options.ok());
  auto report = cli::Run(options.value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // "ab" occurs at 0, 2, 4 (and 6); with min_count=3 and max_length=2 the
  // top row is "ab" with its full position list.
  EXPECT_NE(report->find("positions 1: 0 2 4 6"), std::string::npos)
      << *report;
}

TEST(SubstringsTest, MmapMatchesInMemoryRun) {
  const std::string record = "0010110100111100101101001";
  std::string path = ::testing::TempDir() + "/sigsub_cli_substrings.txt";
  ASSERT_TRUE(io::WriteTextFile(path, record + "\n").ok());
  auto mapped = ParseArgs({"substrings", std::string("--input=") + path,
                           "--mmap", "--min-length=2"});
  ASSERT_TRUE(mapped.ok());
  auto in_memory = ParseArgs({"substrings", std::string("--input=") + path,
                              "--min-length=2"});
  ASSERT_TRUE(in_memory.ok());
  auto mapped_report = cli::Run(mapped.value());
  ASSERT_TRUE(mapped_report.ok()) << mapped_report.status().ToString();
  auto memory_report = cli::Run(in_memory.value());
  ASSERT_TRUE(memory_report.ok()) << memory_report.status().ToString();
  // Identical rows; only the header advertises the mapping.
  EXPECT_NE(mapped_report->find(", mapped"), std::string::npos);
  std::string mapped_body =
      mapped_report->substr(mapped_report->find('\n'));
  std::string memory_body =
      memory_report->substr(memory_report->find('\n'));
  EXPECT_EQ(mapped_body, memory_body);
  std::remove(path.c_str());
}

TEST(BatchTest, MissingCorpusIsIOError) {
  auto options = ParseArgs({"batch", "--input=/no/such/corpus"});
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(cli::Run(options.value()).status().IsIOError());
}

TEST(BatchTest, ThresholdJobNeedsAlphaOrPValue) {
  std::string path = ::testing::TempDir() + "/sigsub_cli_thr.txt";
  ASSERT_TRUE(io::WriteTextFile(path, "0101\n").ok());
  auto options = ParseArgs(
      {"batch", std::string("--input=") + path, "--job=threshold"});
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(cli::Run(options.value()).status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(RunTest, MinlenFloorAboveLengthNeverRendersBogusRow) {
  // `best` is only valid when something qualified. The single-string
  // path rejects a floor above n outright; the batch engine path returns
  // an empty result, which its table renders as dashes (see
  // BatchTest.MinlenFloorAboveRecordRendersDashes). Neither may print a
  // zero-length substring with X² = 0 and p-value 1 as if it were a
  // finding.
  auto report = cli::Run(
      ParseArgs({"minlen", "--string=0101", "--min-length=10"}).value());
  ASSERT_TRUE(report.status().IsInvalidArgument());
  EXPECT_NE(report.status().message().find("min_length"), std::string::npos);
}

TEST(BatchTest, MinlenFloorAboveRecordRendersDashes) {
  // The engine path does reach the zero-match case: a floor above one
  // record's length yields an empty best, which must render as dashes.
  std::string path = ::testing::TempDir() + "/sigsub_cli_minlen0.txt";
  ASSERT_TRUE(io::WriteTextFile(path, "0101\n000001111111111111\n").ok());
  auto report = cli::Run(ParseArgs({"batch", std::string("--input=") + path,
                                    "--job=minlen", "--min-length=10"})
                             .value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Record 0 (n = 4) cannot satisfy the floor: every cell dashed.
  EXPECT_NE(report->find("0       4   -"), std::string::npos) << *report;
  // Record 1 (n = 18) reports a real window of length >= 10.
  EXPECT_NE(report->find("1       18  "), std::string::npos) << *report;
  EXPECT_NE(report->find("p-value"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BatchTest, ThresholdZeroMatchesRendersDashes) {
  // A record with no match above the threshold must render "-" cells,
  // never the (invalid-on-zero-matches) `best` substring.
  std::string path = ::testing::TempDir() + "/sigsub_cli_thr0.txt";
  ASSERT_TRUE(io::WriteTextFile(path, "0101\n000001111111111111\n").ok());
  auto report = cli::Run(ParseArgs({"batch", std::string("--input=") + path,
                                    "--job=threshold", "--alpha0=9"})
                             .value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Record 0 ("0101") has nothing above X² = 9: matches 0, dashes.
  EXPECT_NE(report->find("0       4   0        -           -         -"),
            std::string::npos)
      << *report;
  // Record 1's planted run does clear it, proving the guard is per-row.
  EXPECT_NE(report->find("1       18  12       5           18        13.0000"),
            std::string::npos)
      << *report;
  std::remove(path.c_str());
}

TEST(StreamTest, ParsesStreamFlags) {
  auto options = ParseArgs({"stream", "--string=0101", "--alpha=0.001",
                            "--max-window=64", "--chunk=16"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options->command, "stream");
  EXPECT_DOUBLE_EQ(options->alpha, 0.001);
  EXPECT_EQ(options->max_window, 64);
  EXPECT_EQ(options->chunk, 16);
  // Stream-only flags are rejected elsewhere; batch flags rejected here.
  EXPECT_TRUE(ParseArgs({"mss", "--string=01", "--alpha=0.1"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"stream", "--string=01", "--job=mss"})
                  .status()
                  .IsInvalidArgument());
}

TEST(StreamTest, FlagsAreValidated) {
  EXPECT_TRUE(cli::Run(ParseArgs({"stream", "--string=0101", "--alpha=2"})
                           .value())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(cli::Run(ParseArgs({"stream", "--string=0101",
                                  "--max-window=0"})
                           .value())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(cli::Run(ParseArgs({"stream", "--string=0101", "--chunk=0"})
                           .value())
                  .status()
                  .IsInvalidArgument());
}

TEST(StreamTest, FlagsBurstAndReportsCalibration) {
  // A long null prefix then a heavy burst: the calibrated detector must
  // alarm inside the burst and the report must carry the calibration
  // summary and the alarm table.
  std::string text(3000, '0');
  for (size_t i = 1; i < text.size(); i += 2) text[i] = '1';  // 0101...
  text += std::string(300, '1');
  auto report = cli::Run(ParseArgs({"stream", "--string=" + text,
                                    "--alpha=0.0001", "--max-window=256",
                                    "--chunk=512"})
                             .value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("n = 3300"), std::string::npos) << *report;
  EXPECT_NE(report->find("scales: 1 2 4 8 16 32 64 128 256"),
            std::string::npos)
      << *report;
  EXPECT_NE(report->find("Sidak over 9 scales"), std::string::npos);
  EXPECT_NE(report->find("alarms:"), std::string::npos);
  EXPECT_NE(report->find("p-value"), std::string::npos) << *report;
}

TEST(StreamTest, QuietNullStreamReportsZeroAlarms) {
  std::string text;
  for (int i = 0; i < 1000; ++i) text += (i * 7 % 13) % 2 ? '1' : '0';
  auto report = cli::Run(
      ParseArgs({"stream", "--string=" + text, "--max-window=64"}).value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("alarms: 0"), std::string::npos) << *report;
}

TEST(StreamTest, ReadsStreamFromFile) {
  std::string path = ::testing::TempDir() + "/sigsub_cli_stream.txt";
  std::string text(500, '0');
  for (size_t i = 1; i < text.size(); i += 2) text[i] = '1';
  text += std::string(200, '1');
  ASSERT_TRUE(io::WriteTextFile(path, text + "\n").ok());
  auto report = cli::Run(ParseArgs({"stream", std::string("--input=") + path,
                                    "--max-window=128", "--alpha=0.001"})
                             .value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("n = 700"), std::string::npos) << *report;
  std::remove(path.c_str());
}

TEST(QueryTest, ParsesQueryFlags) {
  auto options = ParseArgs({"query", "--input=corpus.txt", "--query=mss",
                            "--query=topt:t=3", "--queries-file=q.txt",
                            "--threads=2", "--cache=8"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options->command, "query");
  EXPECT_EQ(options->queries,
            (std::vector<std::string>{"mss", "topt:t=3"}));
  EXPECT_EQ(options->queries_file, "q.txt");
  // query-only flags are rejected elsewhere.
  EXPECT_TRUE(ParseArgs({"mss", "--string=01", "--query=mss"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"batch", "--input=x", "--queries-file=q"})
                  .status()
                  .IsInvalidArgument());
}

TEST(QueryTest, ValidatesItsFlagSet) {
  // A corpus and at least one query are required.
  EXPECT_TRUE(ParseArgs({"query", "--query=mss"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"query", "--input=x"})
                  .status()
                  .IsInvalidArgument());
  // Models live inside the queries; a corpus-level --probs would be
  // silently shadowed, so it is rejected loudly.
  auto status = ParseArgs({"query", "--input=x", "--query=mss",
                           "--probs=0.5,0.5"})
                    .status();
  ASSERT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("--probs"), std::string::npos);
  // Job flags belong to batch.
  EXPECT_TRUE(ParseArgs({"query", "--input=x", "--query=mss", "--job=mss"})
                  .status()
                  .IsInvalidArgument());
  // Corpus-shaping flags describe a file layout; with --string they
  // would be silently ignored, so they are rejected loudly.
  for (const char* flag : {"--format=csv", "--column=1", "--csv-header"}) {
    auto shaped =
        ParseArgs({"query", "--string=0101", "--query=mss", flag}).status();
    ASSERT_TRUE(shaped.IsInvalidArgument()) << flag;
    EXPECT_NE(shaped.message().find("--string"), std::string::npos) << flag;
  }
}

TEST(QueryTest, RunsEveryKernelAgainstAStringCorpus) {
  auto report = cli::Run(
      ParseArgs({"query", "--string=0101011111111110101",
                 "--query=mss", "--query=topt:t=2",
                 "--query=disjoint:t=2,min_length=3",
                 "--query=threshold:alpha0=8,max_matches=4",
                 "--query=minlen:min_length=6",
                 "--query=lenbound:min_length=4,max_length=8",
                 "--query=arlm", "--query=agmm",
                 "--query=blocked:block_size=8"})
          .value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const char* kind : {"mss", "topt", "disjoint", "threshold", "minlen",
                           "lenbound", "arlm", "agmm", "blocked"}) {
    EXPECT_NE(report->find(kind), std::string::npos) << kind << *report;
  }
  // The planted run of ones is the MSS; its X² appears in the table.
  EXPECT_NE(report->find("10.0000"), std::string::npos) << *report;
  EXPECT_NE(report->find("cache:"), std::string::npos);
}

TEST(QueryTest, MatchesSingleStringCommand) {
  // The query path must report the same MSS window the one-shot `mss`
  // command reports for the same record.
  std::string text = "0101011111111110101";
  auto single =
      cli::Run(ParseArgs({"mss", std::string("--string=") + text}).value());
  auto query = cli::Run(ParseArgs({"query", std::string("--string=") + text,
                                   "--query=mss:seq=0,model=uniform"})
                            .value());
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_NE(single->find("10.0000"), std::string::npos);
  EXPECT_NE(query->find("10.0000"), std::string::npos);
}

TEST(QueryTest, ReadsQueriesFileWithComments) {
  std::string corpus_path = ::testing::TempDir() + "/sigsub_q_corpus.txt";
  std::string queries_path = ::testing::TempDir() + "/sigsub_q_list.txt";
  ASSERT_TRUE(io::WriteTextFile(corpus_path,
                                "0101011111111110101\n0000000000111111\n")
                  .ok());
  ASSERT_TRUE(io::WriteTextFile(queries_path,
                                "# corpus-wide sweep\n"
                                "mss:seq=0\n"
                                "\n"
                                "  topt:seq=1,t=2\n")
                  .ok());
  auto report = cli::Run(
      ParseArgs({"query", std::string("--input=") + corpus_path,
                 std::string("--queries-file=") + queries_path})
          .value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("queries = 2"), std::string::npos) << *report;
  std::remove(corpus_path.c_str());
  std::remove(queries_path.c_str());
}

TEST(QueryTest, MalformedQueryNamesTheQuery) {
  auto report = cli::Run(ParseArgs({"query", "--string=0101",
                                    "--query=mss", "--query=bogus:t=1"})
                             .value());
  ASSERT_TRUE(report.status().IsInvalidArgument());
  EXPECT_NE(report.status().message().find("query 1"), std::string::npos);
  EXPECT_NE(report.status().message().find("unknown query kind"),
            std::string::npos);
}

TEST(QueryTest, OutOfRangeSequenceIndexNamesField) {
  auto report = cli::Run(
      ParseArgs({"query", "--string=0101", "--query=mss:seq=7"}).value());
  ASSERT_TRUE(report.status().IsInvalidArgument());
  EXPECT_NE(report.status().message().find("field seq"), std::string::npos);
}

TEST(BatchTest, AlphaPThresholdRunsAndWins) {
  std::string path = ::testing::TempDir() + "/sigsub_cli_alphap.txt";
  ASSERT_TRUE(io::WriteTextFile(path, "0101\n000001111111111111\n").ok());
  // alpha_p = 0.001 -> χ²(1) critical value ≈ 10.83: record 1's planted
  // run (X² = 13) clears it, record 0 does not.
  auto report = cli::Run(ParseArgs({"batch", std::string("--input=") + path,
                                    "--job=threshold", "--alpha-p=0.001"})
                             .value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("13.0000"), std::string::npos) << *report;
  // --alpha-p takes precedence over --alpha0: an alpha0 that would match
  // everything must not change the result.
  auto both = cli::Run(ParseArgs({"batch", std::string("--input=") + path,
                                  "--job=threshold", "--alpha-p=0.001",
                                  "--alpha0=0"})
                           .value());
  ASSERT_TRUE(both.ok()) << both.status().ToString();
  EXPECT_EQ(*report, *both);
  // Like the other threshold flags, it is rejected for other jobs.
  EXPECT_TRUE(ParseArgs({"batch", std::string("--input=") + path,
                         "--job=mss", "--alpha-p=0.001"})
                  .status()
                  .IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(BatchTest, FlagRangeErrorsSpeakFlagVocabulary) {
  // Batch rides the query layer internally, but errors about values the
  // user typed as flags must name the flags, not query-grammar fields.
  std::string path = ::testing::TempDir() + "/sigsub_cli_flagvocab.txt";
  ASSERT_TRUE(io::WriteTextFile(path, "0101\n").ok());
  std::string input = std::string("--input=") + path;
  auto probs = cli::Run(
      ParseArgs({"batch", input, "--probs=0.3,0.3,0.4"}).value());
  ASSERT_TRUE(probs.status().IsInvalidArgument());
  EXPECT_NE(probs.status().message().find("--probs"), std::string::npos)
      << probs.status().message();
  auto t = cli::Run(
      ParseArgs({"batch", input, "--job=topt", "--t=0"}).value());
  ASSERT_TRUE(t.status().IsInvalidArgument());
  EXPECT_NE(t.status().message().find("--t"), std::string::npos);
  // An out-of-range --alpha-p is a parse-time error, and a negative one
  // must not be conflated with the unset sentinel (which would silently
  // hand precedence back to --alpha0).
  for (const char* bad : {"--alpha-p=2", "--alpha-p=-0.001",
                          "--alpha-p=0"}) {
    auto alpha_p =
        ParseArgs({"batch", input, "--job=threshold", bad}).status();
    ASSERT_TRUE(alpha_p.IsInvalidArgument()) << bad;
    EXPECT_NE(alpha_p.message().find("--alpha-p"), std::string::npos)
        << bad;
  }
  std::remove(path.c_str());
}

TEST(BatchTest, VerboseAppendsSharedEngineStatsLine) {
  std::string path = ::testing::TempDir() + "/sigsub_cli_verbose.txt";
  ASSERT_TRUE(io::WriteTextFile(path, "0101\n0011\n").ok());
  auto report = cli::Run(
      ParseArgs({"batch", std::string("--input=") + path, "--verbose"})
          .value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The same engine::FormatEngineStats line the server's STATS endpoint
  // serves: one snapshot struct, two consumers.
  EXPECT_NE(report->find("stats: queries=2 batches=1 "), std::string::npos)
      << *report;
  EXPECT_NE(report->find("cache_misses=2"), std::string::npos) << *report;
  EXPECT_NE(report->find("streams_open=0"), std::string::npos) << *report;
  std::remove(path.c_str());
}

TEST(ServeTest, ParsesServeFlags) {
  auto options = ParseArgs(
      {"serve", "--input=corpus.txt", "--port=9000", "--host=0.0.0.0",
       "--max-clients=8", "--max-queue=16", "--max-inflight=4",
       "--idle-timeout-ms=1000", "--max-runtime-ms=250"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options->command, "serve");
  EXPECT_EQ(options->port, 9000);
  EXPECT_EQ(options->host, "0.0.0.0");
  EXPECT_EQ(options->max_clients, 8);
  EXPECT_EQ(options->max_queue, 16);
  EXPECT_EQ(options->max_inflight, 4);
  EXPECT_EQ(options->idle_timeout_ms, 1000);
  EXPECT_EQ(options->max_runtime_ms, 250);
}

TEST(ServeTest, ValidatesItsFlagSet) {
  // The daemon serves a corpus file; literals and client flags are out.
  EXPECT_TRUE(ParseArgs({"serve"}).status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseArgs({"serve", "--string=0101"}).status().IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"serve", "--input=c.txt", "--probs=0.5,0.5"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"serve", "--input=c.txt", "--send=PING"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"serve", "--input=c.txt", "--port=70000"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"serve", "--input=c.txt", "--max-queue=0"})
                  .status()
                  .IsInvalidArgument());
}

TEST(ClientTest, ParsesClientFlags) {
  auto options = ParseArgs({"client", "--port=9000", "--send=PING",
                            "--send=STATS", "--timeout-ms=1000",
                            "--linger-ms=50"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options->command, "client");
  EXPECT_EQ(options->port, 9000);
  EXPECT_EQ(options->sends,
            (std::vector<std::string>{"PING", "STATS"}));
  EXPECT_EQ(options->timeout_ms, 1000);
  EXPECT_EQ(options->linger_ms, 50);
}

TEST(ClientTest, ValidatesItsFlagSet) {
  // A port is mandatory (no ephemeral guessing) and so is something to
  // send — either --send lines or an --input script.
  EXPECT_TRUE(
      ParseArgs({"client", "--send=PING"}).status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseArgs({"client", "--port=9000"}).status().IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"client", "--port=9000", "--send=PING",
                         "--string=01"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"client", "--port=0", "--send=PING"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseArgs({"client", "--port=9000", "--send=PING",
                         "--x2-dispatch=simd"})
                  .status()
                  .IsInvalidArgument());
}

TEST(ServeClientTest, LoopbackRoundTripOverEphemeralPort) {
  // Full CLI-level round trip: a serve instance on an ephemeral port with
  // a short self-drain budget, driven by the client command.
  std::string path = ::testing::TempDir() + "/sigsub_cli_serve.txt";
  ASSERT_TRUE(io::WriteTextFile(path, "01010101\n00110011\n").ok());

  server::Server daemon(
      engine::Corpus::FromStrings({"01010101", "00110011"}, "01").value());
  ASSERT_TRUE(daemon.Start().ok());

  auto options = ParseArgs(
      {"client", StrCat("--port=", daemon.port()), "--send=PING",
       "--send=QUERY mss:seq=0", "--send=STATS"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  auto report = cli::Run(options.value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("OK pong"), std::string::npos) << *report;
  EXPECT_NE(report->find("OK kind=mss seq=0 "), std::string::npos)
      << *report;
  EXPECT_NE(report->find(" queries=1 "), std::string::npos) << *report;
  std::remove(path.c_str());
}

TEST(UsageTest, MentionsAllCommands) {
  std::string usage = UsageText();
  for (const char* command :
       {"mss", "topt", "threshold", "minlen", "score", "batch", "query",
        "stream", "serve", "client"}) {
    EXPECT_NE(usage.find(command), std::string::npos) << command;
  }
}

}  // namespace
}  // namespace cli
}  // namespace sigsub
