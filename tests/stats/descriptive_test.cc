#include "stats/descriptive.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace sigsub {
namespace stats {
namespace {

TEST(DescriptiveTest, MeanAndVariance) {
  std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  // Sum of squared deviations = 32; unbiased variance = 32/7.
  EXPECT_NEAR(Variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, SingleValueMean) {
  std::vector<double> xs{3.25};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.25);
}

TEST(FitLineTest, ExactLine) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys{3.0, 5.0, 7.0, 9.0};  // y = 2x + 1.
  LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, NoisyLineRecoversSlope) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    double x = 0.1 * i;
    xs.push_back(x);
    // Deterministic "noise" with zero mean trend.
    ys.push_back(1.5 * x - 2.0 + 0.05 * std::sin(17.0 * x));
  }
  LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 1.5, 0.01);
  EXPECT_NEAR(fit.intercept, -2.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(FitLineTest, LogLogPowerLaw) {
  // The harness's main use: fit ln(iterations) vs ln(n) for n^{1.5}.
  std::vector<double> xs, ys;
  for (double n : {512.0, 1024.0, 2048.0, 4096.0, 8192.0}) {
    xs.push_back(std::log(n));
    ys.push_back(std::log(3.7 * std::pow(n, 1.5)));
  }
  LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 1.5, 1e-9);
}

TEST(PearsonCorrelationTest, PerfectAndAnti) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> up{2.0, 4.0, 6.0, 8.0};
  std::vector<double> down{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(xs, down), -1.0, 1e-12);
}

TEST(PearsonCorrelationTest, SymmetricInArguments) {
  std::vector<double> xs{1.0, 5.0, 2.0, 8.0, 3.0};
  std::vector<double> ys{2.0, 3.0, 9.0, 1.0, 4.0};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), PearsonCorrelation(ys, xs), 1e-14);
  EXPECT_LE(std::fabs(PearsonCorrelation(xs, ys)), 1.0);
}

}  // namespace
}  // namespace stats
}  // namespace sigsub
