#include "stats/normal.h"

#include <cmath>

#include "gtest/gtest.h"

namespace sigsub {
namespace stats {
namespace {

TEST(StandardNormalTest, KnownCdfValues) {
  EXPECT_NEAR(StandardNormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(StandardNormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(StandardNormalCdf(-1.0), 0.15865525393145705, 1e-12);
  EXPECT_NEAR(StandardNormalCdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(StandardNormalCdf(2.5758293035489004), 0.995, 1e-12);
}

TEST(StandardNormalTest, QuantileKnownValues) {
  EXPECT_NEAR(StandardNormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(StandardNormalQuantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(StandardNormalQuantile(0.995), 2.5758293035489004, 1e-8);
  EXPECT_NEAR(StandardNormalQuantile(0.025), -1.959963984540054, 1e-8);
}

TEST(StandardNormalTest, QuantileRoundTrip) {
  for (double p = 0.001; p < 0.999; p += 0.017) {
    EXPECT_NEAR(StandardNormalCdf(StandardNormalQuantile(p)), p, 1e-10) << p;
  }
  // Tails.
  for (double p : {1e-8, 1e-5, 1.0 - 1e-5, 1.0 - 1e-8}) {
    EXPECT_NEAR(StandardNormalCdf(StandardNormalQuantile(p)) / p, 1.0, 1e-5)
        << p;
  }
}

TEST(NormalDistributionTest, LocationScale) {
  NormalDistribution d(10.0, 2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 10.0);
  EXPECT_DOUBLE_EQ(d.stddev(), 2.0);
  EXPECT_NEAR(d.Cdf(10.0), 0.5, 1e-14);
  EXPECT_NEAR(d.Cdf(12.0), StandardNormalCdf(1.0), 1e-14);
  EXPECT_NEAR(d.Quantile(0.975), 10.0 + 2.0 * 1.959963984540054, 1e-7);
}

TEST(NormalDistributionTest, PdfPeakAndSymmetry) {
  NormalDistribution d(3.0, 1.5);
  EXPECT_NEAR(d.Pdf(3.0), 1.0 / (1.5 * std::sqrt(2.0 * M_PI)), 1e-13);
  EXPECT_NEAR(d.Pdf(3.0 + 0.7), d.Pdf(3.0 - 0.7), 1e-14);
}

TEST(NormalDistributionTest, SfComplementsCdf) {
  NormalDistribution d(0.0, 1.0);
  for (double x : {-3.0, -0.5, 0.0, 0.5, 3.0}) {
    EXPECT_NEAR(d.Cdf(x) + d.Sf(x), 1.0, 1e-14) << x;
  }
  // Far tail retains relative precision.
  EXPECT_GT(d.Sf(38.0), 0.0);
}

TEST(NormalDistributionTest, PdfIntegratesToOne) {
  NormalDistribution d(1.0, 0.5);
  double integral = 0.0;
  const double dx = 1e-3;
  for (double x = -4.0; x <= 6.0; x += dx) {
    integral += d.Pdf(x) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 1e-4);
}

}  // namespace
}  // namespace stats
}  // namespace sigsub
