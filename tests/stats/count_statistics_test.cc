#include "stats/count_statistics.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "stats/chi_squared.h"

namespace sigsub {
namespace stats {
namespace {

TEST(PearsonChiSquareTest, CoinExampleFromPaper) {
  // 19 heads, 1 tail against a fair coin:
  // X² = (19-10)²/10 + (1-10)²/10 = 16.2.
  std::vector<int64_t> counts{19, 1};
  std::vector<double> probs{0.5, 0.5};
  EXPECT_NEAR(PearsonChiSquare(counts, probs), 16.2, 1e-12);
}

TEST(PearsonChiSquareTest, SimplifiedFormMatchesDefinition) {
  // Check Σ Y²/(l·p) − l == Σ (Y − l·p)²/(l·p) on a multinomial example.
  std::vector<int64_t> counts{7, 2, 11};
  std::vector<double> probs{0.2, 0.3, 0.5};
  int64_t l = 20;
  double direct = 0.0;
  for (int i = 0; i < 3; ++i) {
    double e = l * probs[i];
    direct += (counts[i] - e) * (counts[i] - e) / e;
  }
  EXPECT_NEAR(PearsonChiSquare(counts, probs), direct, 1e-12);
}

TEST(PearsonChiSquareTest, ZeroWhenCountsMatchExpectation) {
  std::vector<int64_t> counts{10, 10, 20};
  std::vector<double> probs{0.25, 0.25, 0.5};
  EXPECT_NEAR(PearsonChiSquare(counts, probs), 0.0, 1e-12);
}

TEST(PearsonChiSquareTest, EmptyCountVectorIsZero) {
  std::vector<int64_t> counts{0, 0};
  std::vector<double> probs{0.5, 0.5};
  EXPECT_DOUBLE_EQ(PearsonChiSquare(counts, probs), 0.0);
}

TEST(PearsonChiSquareTest, PermutationInvariant) {
  // The statistic depends only on counts, not order (paper remark after
  // Eq. 5) — counts themselves are order-free, but check symmetry under
  // consistent permutation of (counts, probs).
  std::vector<int64_t> counts{3, 9, 4};
  std::vector<double> probs{0.5, 0.2, 0.3};
  std::vector<int64_t> counts_p{9, 4, 3};
  std::vector<double> probs_p{0.2, 0.3, 0.5};
  EXPECT_NEAR(PearsonChiSquare(counts, probs),
              PearsonChiSquare(counts_p, probs_p), 1e-12);
}

TEST(ValidateCountsAndProbsTest, CatchesBadInput) {
  std::vector<double> probs{0.5, 0.5};
  EXPECT_TRUE(ValidateCountsAndProbs(std::vector<int64_t>{1}, probs)
                  .IsInvalidArgument());
  EXPECT_TRUE(ValidateCountsAndProbs(std::vector<int64_t>{}, {})
                  .IsInvalidArgument());
  EXPECT_TRUE(ValidateCountsAndProbs(std::vector<int64_t>{-1, 2}, probs)
                  .IsInvalidArgument());
  EXPECT_TRUE(ValidateCountsAndProbs(std::vector<int64_t>{1, 2},
                                     std::vector<double>{0.5, 0.6})
                  .IsInvalidArgument());
  EXPECT_TRUE(ValidateCountsAndProbs(std::vector<int64_t>{1, 2},
                                     std::vector<double>{1.0, 0.0})
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ValidateCountsAndProbs(std::vector<int64_t>{1, 2}, probs).ok());
}

TEST(PearsonChiSquareCheckedTest, PropagatesValidation) {
  auto bad = PearsonChiSquareChecked(std::vector<int64_t>{1},
                                     std::vector<double>{0.5, 0.5});
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  auto good = PearsonChiSquareChecked(std::vector<int64_t>{19, 1},
                                      std::vector<double>{0.5, 0.5});
  ASSERT_TRUE(good.ok());
  EXPECT_NEAR(good.value(), 16.2, 1e-12);
}

TEST(LikelihoodRatioTest, ZeroWhenCountsMatchExpectation) {
  std::vector<int64_t> counts{25, 25};
  std::vector<double> probs{0.5, 0.5};
  EXPECT_NEAR(LikelihoodRatioG2(counts, probs), 0.0, 1e-12);
}

TEST(LikelihoodRatioTest, HandlesZeroCounts) {
  std::vector<int64_t> counts{20, 0};
  std::vector<double> probs{0.5, 0.5};
  // G² = 2·20·ln(20/10) = 40 ln 2.
  EXPECT_NEAR(LikelihoodRatioG2(counts, probs), 40.0 * std::log(2.0), 1e-10);
}

TEST(LikelihoodRatioTest, CloseToPearsonForSmallDeviations) {
  // Both statistics converge to the same χ² limit; for mild deviations at
  // large l they should nearly agree (paper Section 1).
  std::vector<int64_t> counts{5100, 4900};
  std::vector<double> probs{0.5, 0.5};
  double x2 = PearsonChiSquare(counts, probs);
  double g2 = LikelihoodRatioG2(counts, probs);
  EXPECT_NEAR(x2, g2, 0.01 * x2);
}

TEST(LikelihoodRatioTest, PearsonBelowG2ForExtremeDeviations) {
  // X² converges to χ² from below, G² from above (paper Section 1), and
  // for heavily skewed observations G² ≥ X² does not hold in general—but
  // the classic inequality G² <= X² holds when all Y_i >= l·p_i is false.
  // We only check both are positive and finite here plus the documented
  // ordering on a concrete example.
  std::vector<int64_t> counts{19, 1};
  std::vector<double> probs{0.5, 0.5};
  double x2 = PearsonChiSquare(counts, probs);
  double g2 = LikelihoodRatioG2(counts, probs);
  EXPECT_GT(x2, 0.0);
  EXPECT_GT(g2, 0.0);
  EXPECT_TRUE(std::isfinite(g2));
}

TEST(ChiSquarePValueTest, MatchesDistribution) {
  ChiSquaredDistribution d(1);
  EXPECT_NEAR(ChiSquarePValue(16.2, 2), d.Sf(16.2), 1e-15);
  // p-value of 3.84 with 1 dof is ~0.05.
  EXPECT_NEAR(ChiSquarePValue(3.841458820694124, 2), 0.05, 1e-9);
}

TEST(ChiSquarePValueTest, MonotoneDecreasingInStatistic) {
  double prev = 1.1;
  for (double x2 = 0.0; x2 < 30.0; x2 += 1.3) {
    double p = ChiSquarePValue(x2, 4);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(ChiSquareThresholdTest, RoundTripsWithPValue) {
  for (int k : {2, 3, 5, 10}) {
    for (double alpha : {0.1, 0.01, 1e-4}) {
      double threshold = ChiSquareThresholdForPValue(alpha, k);
      EXPECT_NEAR(ChiSquarePValue(threshold, k) / alpha, 1.0, 1e-6)
          << "k=" << k << " alpha=" << alpha;
    }
  }
}

}  // namespace
}  // namespace stats
}  // namespace sigsub
