#include "stats/exact_multinomial.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "stats/count_statistics.h"

namespace sigsub {
namespace stats {
namespace {

TEST(LogMultinomialProbabilityTest, BinomialSpecialCase) {
  // P({19,1}) for a fair coin = C(20,19)/2^20 = 20/2^20.
  std::vector<int64_t> counts{19, 1};
  std::vector<double> probs{0.5, 0.5};
  EXPECT_NEAR(std::exp(LogMultinomialProbability(counts, probs)),
              20.0 / 1048576.0, 1e-15);
}

TEST(LogMultinomialProbabilityTest, TrinomialValue) {
  // P({1,1,1}) with p = (1/3,1/3,1/3) over l=3: 3!/(1·1·1)·(1/27) = 6/27.
  std::vector<int64_t> counts{1, 1, 1};
  std::vector<double> probs{1.0 / 3, 1.0 / 3, 1.0 / 3};
  EXPECT_NEAR(std::exp(LogMultinomialProbability(counts, probs)), 6.0 / 27.0,
              1e-13);
}

TEST(LogMultinomialProbabilityTest, SumsToOneOverAllConfigurations) {
  // Σ over all compositions of l into k parts of P(β) == 1.
  std::vector<double> probs{0.2, 0.3, 0.5};
  const int64_t l = 6;
  double total = 0.0;
  for (int64_t a = 0; a <= l; ++a) {
    for (int64_t b = 0; a + b <= l; ++b) {
      std::vector<int64_t> counts{a, b, l - a - b};
      total += std::exp(LogMultinomialProbability(counts, probs));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ConfigurationCountTest, ClosedForm) {
  EXPECT_EQ(MultinomialConfigurationCount(10, 1), 1);
  EXPECT_EQ(MultinomialConfigurationCount(10, 2), 11);
  EXPECT_EQ(MultinomialConfigurationCount(4, 3), 15);  // C(6,2).
  EXPECT_EQ(MultinomialConfigurationCount(0, 4), 1);
}

TEST(ExactPValueTest, PaperCoinExampleTwoSided) {
  // 19 heads / 1 tail, fair coin. Configurations at least as extreme by X²
  // are {0,20,1,19} heads: p = (1+1+20+20)/2^20 ≈ 4.0e-5 — twice the
  // paper's one-sided 0.002% (the X² ordering is two-sided).
  std::vector<int64_t> observed{19, 1};
  std::vector<double> probs{0.5, 0.5};
  auto p = ExactMultinomialPValue(observed, probs);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), 42.0 / 1048576.0, 1e-12);
}

TEST(ExactPValueTest, MostLikelyOutcomeHasLargePValue) {
  std::vector<int64_t> observed{10, 10};
  std::vector<double> probs{0.5, 0.5};
  auto p = ExactMultinomialPValue(observed, probs);
  ASSERT_TRUE(p.ok());
  // Every outcome is at least as extreme as the most balanced one.
  EXPECT_NEAR(p.value(), 1.0, 1e-12);
}

TEST(ExactPValueTest, AgreesWithChiSquareAsymptoticsAtModerateSize) {
  // With l = 60 the χ²(1) approximation should be within a few 10% of the
  // exact tail for a moderate deviation.
  std::vector<int64_t> observed{38, 22};
  std::vector<double> probs{0.5, 0.5};
  auto exact = ExactMultinomialPValue(observed, probs);
  ASSERT_TRUE(exact.ok());
  double x2 = PearsonChiSquare(observed, probs);
  double asymptotic = ChiSquarePValue(x2, 2);
  EXPECT_GT(exact.value(), 0.0);
  EXPECT_LT(std::fabs(exact.value() - asymptotic) / asymptotic, 0.35);
}

TEST(ExactPValueTest, ChiSquareApproximationConvergesFromBelow) {
  // Paper Section 1: the X² statistic converges to χ² from below, so the
  // asymptotic p-value should (for these balanced-ish binary cases) be
  // conservative relative to exact enumeration.
  std::vector<double> probs{0.5, 0.5};
  for (int64_t heads : {14, 15, 16}) {
    std::vector<int64_t> observed{heads, 20 - heads};
    auto exact = ExactMultinomialPValue(observed, probs);
    ASSERT_TRUE(exact.ok());
    double x2 = PearsonChiSquare(observed, probs);
    double asym = ChiSquarePValue(x2, 2);
    // Exact discrete tail is within a factor ~2 of the asymptotic value.
    EXPECT_LT(exact.value(), 2.0 * asym + 1e-9) << heads;
    EXPECT_GT(exact.value(), 0.2 * asym) << heads;
  }
}

TEST(ExactPValueTest, RejectsHugeEnumerations) {
  std::vector<int64_t> observed(6, 200);  // l=1200, k=6: astronomical.
  std::vector<double> probs(6, 1.0 / 6);
  auto p = ExactMultinomialPValue(observed, probs);
  EXPECT_TRUE(p.status().IsInvalidArgument());
}

TEST(ExactPValueTest, ValidatesInput) {
  auto p = ExactMultinomialPValue(std::vector<int64_t>{1, 2},
                                  std::vector<double>{0.7, 0.7});
  EXPECT_TRUE(p.status().IsInvalidArgument());
}

}  // namespace
}  // namespace stats
}  // namespace sigsub
