#include "stats/gamma.h"

#include <cmath>

#include "gtest/gtest.h"

namespace sigsub {
namespace stats {
namespace {

TEST(LogGammaTest, MatchesFactorials) {
  // Γ(n) = (n-1)!
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-14);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-14);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-12);
  EXPECT_NEAR(LogGamma(11.0), std::log(3628800.0), 1e-10);
}

TEST(LogGammaTest, HalfIntegerValues) {
  // Γ(1/2) = sqrt(pi).
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-13);
  // Γ(3/2) = sqrt(pi)/2.
  EXPECT_NEAR(LogGamma(1.5), std::log(std::sqrt(M_PI) / 2.0), 1e-13);
}

TEST(RegularizedGammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(
      RegularizedGammaP(2.5, std::numeric_limits<double>::infinity()), 1.0);
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^{-x}: the exponential CDF.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-13)
        << "x=" << x;
  }
}

TEST(RegularizedGammaTest, ErlangSpecialCase) {
  // P(2, x) = 1 - e^{-x}(1 + x).
  for (double x : {0.1, 1.0, 3.0, 8.0, 20.0}) {
    EXPECT_NEAR(RegularizedGammaP(2.0, x), 1.0 - std::exp(-x) * (1.0 + x),
                1e-13)
        << "x=" << x;
  }
}

TEST(RegularizedGammaTest, HalfShapeMatchesErf) {
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.01, 0.25, 1.0, 4.0, 9.0}) {
    EXPECT_NEAR(RegularizedGammaP(0.5, x), std::erf(std::sqrt(x)), 1e-12)
        << "x=" << x;
  }
}

TEST(RegularizedGammaTest, PAndQAreComplementary) {
  for (double a : {0.5, 1.0, 2.5, 7.0, 40.0}) {
    for (double x : {0.01, 0.5, 1.0, 3.0, 10.0, 60.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGammaTest, MonotoneInX) {
  for (double a : {0.5, 2.0, 10.0}) {
    double prev = -1.0;
    for (double x = 0.0; x <= 40.0; x += 0.5) {
      double p = RegularizedGammaP(a, x);
      EXPECT_GE(p, prev) << "a=" << a << " x=" << x;
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      prev = p;
    }
  }
}

TEST(RegularizedGammaTest, DeepTailKeepsRelativePrecision) {
  // Q(1, x) = e^{-x} exactly; check far tail relative error.
  double q = RegularizedGammaQ(1.0, 500.0);
  double expected = std::exp(-500.0);
  EXPECT_GT(q, 0.0);
  EXPECT_NEAR(q / expected, 1.0, 1e-9);
}

class GammaInverseRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GammaInverseRoundTrip, InverseIsConsistent) {
  auto [a, p] = GetParam();
  double x = InverseRegularizedGammaP(a, p);
  EXPECT_GE(x, 0.0);
  EXPECT_NEAR(RegularizedGammaP(a, x), p, 1e-9)
      << "a=" << a << " p=" << p << " x=" << x;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GammaInverseRoundTrip,
    ::testing::Combine(
        ::testing::Values(0.25, 0.5, 1.0, 1.5, 2.0, 5.0, 12.5, 50.0),
        ::testing::Values(1e-6, 0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999,
                          0.999999)));

TEST(GammaInverseTest, ZeroMapsToZero) {
  EXPECT_DOUBLE_EQ(InverseRegularizedGammaP(3.0, 0.0), 0.0);
}

}  // namespace
}  // namespace stats
}  // namespace sigsub
