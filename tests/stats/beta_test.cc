#include "stats/beta.h"

#include <cmath>

#include "gtest/gtest.h"
#include "stats/gamma.h"

namespace sigsub {
namespace stats {
namespace {

TEST(LogBetaTest, KnownValues) {
  // B(1,1) = 1; B(2,3) = 1/12; B(0.5,0.5) = pi.
  EXPECT_NEAR(LogBeta(1.0, 1.0), 0.0, 1e-14);
  EXPECT_NEAR(LogBeta(2.0, 3.0), std::log(1.0 / 12.0), 1e-12);
  EXPECT_NEAR(LogBeta(0.5, 0.5), std::log(M_PI), 1e-12);
}

TEST(LogBetaTest, Symmetric) {
  EXPECT_NEAR(LogBeta(2.5, 7.0), LogBeta(7.0, 2.5), 1e-13);
}

TEST(IncompleteBetaTest, Boundaries) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
  // I_x(1,1) = x.
  for (double x : {0.0, 0.1, 0.35, 0.5, 0.9, 1.0}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-13);
  }
}

TEST(IncompleteBetaTest, PowerSpecialCases) {
  // I_x(a,1) = x^a, I_x(1,b) = 1 - (1-x)^b.
  for (double x : {0.05, 0.3, 0.7, 0.95}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(3.0, 1.0, x), std::pow(x, 3.0),
                1e-12);
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 4.0, x),
                1.0 - std::pow(1.0 - x, 4.0), 1e-12);
  }
}

TEST(IncompleteBetaTest, SymmetryIdentity) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double a : {0.5, 2.0, 6.5}) {
    for (double b : {1.0, 3.5, 9.0}) {
      for (double x : {0.1, 0.42, 0.77}) {
        EXPECT_NEAR(RegularizedIncompleteBeta(a, b, x),
                    1.0 - RegularizedIncompleteBeta(b, a, 1.0 - x), 1e-11)
            << "a=" << a << " b=" << b << " x=" << x;
      }
    }
  }
}

TEST(IncompleteBetaTest, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.02) {
    double v = RegularizedIncompleteBeta(2.5, 4.0, x);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
}

TEST(IncompleteBetaTest, MedianOfSymmetricBetaIsHalf) {
  for (double a : {0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(a, a, 0.5), 0.5, 1e-12) << a;
  }
}

}  // namespace
}  // namespace stats
}  // namespace sigsub
