#include "stats/binomial.h"

#include <cmath>

#include "gtest/gtest.h"
#include "stats/normal.h"

namespace sigsub {
namespace stats {
namespace {

TEST(LogBinomialCoefficientTest, SmallValues) {
  EXPECT_NEAR(LogBinomialCoefficient(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(LogBinomialCoefficient(20, 19), std::log(20.0), 1e-12);
  EXPECT_NEAR(LogBinomialCoefficient(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomialCoefficient(10, 10), 0.0, 1e-12);
}

TEST(BinomialTest, PmfSumsToOne) {
  BinomialDistribution d(30, 0.37);
  double sum = 0.0;
  for (int64_t y = 0; y <= 30; ++y) sum += d.Pmf(y);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(BinomialTest, PmfKnownValues) {
  // Fair coin, 20 tosses: P(19 heads) = 20/2^20 (the paper's Section 1
  // example).
  BinomialDistribution d(20, 0.5);
  EXPECT_NEAR(d.Pmf(19), 20.0 / 1048576.0, 1e-15);
  EXPECT_NEAR(d.Pmf(20), 1.0 / 1048576.0, 1e-15);
  // P(X >= 19) = 21/2^20 ~= 0.002% — the paper's one-sided p-value.
  EXPECT_NEAR(d.Sf(18), 21.0 / 1048576.0, 1e-14);
}

TEST(BinomialTest, CdfMatchesDirectSummation) {
  BinomialDistribution d(25, 0.3);
  double cumulative = 0.0;
  for (int64_t y = 0; y <= 25; ++y) {
    cumulative += d.Pmf(y);
    EXPECT_NEAR(d.Cdf(y), cumulative, 1e-11) << "y=" << y;
    EXPECT_NEAR(d.Sf(y), 1.0 - cumulative, 1e-11) << "y=" << y;
  }
}

TEST(BinomialTest, EdgeProbabilities) {
  BinomialDistribution zero(10, 0.0);
  EXPECT_DOUBLE_EQ(zero.Pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(zero.Pmf(3), 0.0);
  BinomialDistribution one(10, 1.0);
  EXPECT_DOUBLE_EQ(one.Pmf(10), 1.0);
  EXPECT_DOUBLE_EQ(one.Pmf(9), 0.0);
}

TEST(BinomialTest, OutOfSupport) {
  BinomialDistribution d(10, 0.4);
  EXPECT_DOUBLE_EQ(d.Pmf(-1), 0.0);
  EXPECT_DOUBLE_EQ(d.Pmf(11), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(-1), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(10), 1.0);
  EXPECT_DOUBLE_EQ(d.Sf(10), 0.0);
}

TEST(BinomialTest, MomentsMatchTheory) {
  BinomialDistribution d(100, 0.2);
  EXPECT_DOUBLE_EQ(d.mean(), 20.0);
  EXPECT_DOUBLE_EQ(d.variance(), 16.0);
}

TEST(BinomialTest, NormalApproximationForLargeN) {
  // Paper Theorem 2: Binomial(n, p) -> Normal(np, np(1-p)). Compare CDFs
  // at mean ± z·sigma with continuity correction.
  BinomialDistribution b(10000, 0.3);
  NormalDistribution normal(b.mean(), std::sqrt(b.variance()));
  for (double z : {-2.0, -1.0, 0.0, 1.0, 2.0}) {
    int64_t y = static_cast<int64_t>(b.mean() + z * std::sqrt(b.variance()));
    double exact = b.Cdf(y);
    double approx = normal.Cdf(static_cast<double>(y) + 0.5);
    EXPECT_NEAR(exact, approx, 5e-3) << "z=" << z;
  }
}

}  // namespace
}  // namespace stats
}  // namespace sigsub
