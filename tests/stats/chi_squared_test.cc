#include "stats/chi_squared.h"

#include <cmath>

#include "gtest/gtest.h"

namespace sigsub {
namespace stats {
namespace {

TEST(ChiSquaredTest, MakeValidatesDof) {
  EXPECT_TRUE(ChiSquaredDistribution::Make(1).ok());
  EXPECT_TRUE(ChiSquaredDistribution::Make(100).ok());
  EXPECT_TRUE(ChiSquaredDistribution::Make(0).status().IsInvalidArgument());
  EXPECT_TRUE(ChiSquaredDistribution::Make(-3).status().IsInvalidArgument());
}

TEST(ChiSquaredTest, MomentsMatchTheory) {
  ChiSquaredDistribution d(7);
  EXPECT_DOUBLE_EQ(d.mean(), 7.0);
  EXPECT_DOUBLE_EQ(d.variance(), 14.0);
}

TEST(ChiSquaredTest, TwoDofClosedForm) {
  // χ²(2): cdf(x) = 1 − e^{−x/2} (used in the paper's Lemma 3 proof).
  ChiSquaredDistribution d(2);
  for (double x : {0.1, 0.7, 1.0, 3.0, 10.0, 25.0}) {
    EXPECT_NEAR(d.Cdf(x), 1.0 - std::exp(-x / 2.0), 1e-13) << x;
    EXPECT_NEAR(d.Sf(x), std::exp(-x / 2.0), 1e-13) << x;
    EXPECT_NEAR(d.Pdf(x), 0.5 * std::exp(-x / 2.0), 1e-13) << x;
  }
}

TEST(ChiSquaredTest, StandardCriticalValuesOneDof) {
  // Classic table values for χ²(1).
  ChiSquaredDistribution d(1);
  EXPECT_NEAR(d.Cdf(3.841458820694124), 0.95, 1e-9);
  EXPECT_NEAR(d.Cdf(6.634896601021214), 0.99, 1e-9);
  EXPECT_NEAR(d.Quantile(0.95), 3.841458820694124, 1e-7);
  EXPECT_NEAR(d.Quantile(0.99), 6.634896601021214, 1e-7);
}

TEST(ChiSquaredTest, StandardCriticalValuesManyDof) {
  // χ²(4) 95th percentile = 9.487729..., χ²(9) 95th = 16.918977...
  EXPECT_NEAR(ChiSquaredDistribution(4).Quantile(0.95), 9.487729036781154,
              1e-7);
  EXPECT_NEAR(ChiSquaredDistribution(9).Quantile(0.95), 16.918977604620448,
              1e-7);
}

TEST(ChiSquaredTest, PdfIntegratesToCdf) {
  // Trapezoidal integration of the pdf should track the cdf.
  ChiSquaredDistribution d(5);
  double integral = 0.0;
  double prev_pdf = d.Pdf(0.0);
  const double dx = 1e-3;
  for (double x = dx; x <= 20.0; x += dx) {
    double pdf = d.Pdf(x);
    integral += 0.5 * (pdf + prev_pdf) * dx;
    prev_pdf = pdf;
  }
  EXPECT_NEAR(integral, d.Cdf(20.0), 1e-5);
}

TEST(ChiSquaredTest, PdfEdgeCasesAtZero) {
  EXPECT_TRUE(std::isinf(ChiSquaredDistribution(1).Pdf(0.0)));
  EXPECT_DOUBLE_EQ(ChiSquaredDistribution(2).Pdf(0.0), 0.5);
  EXPECT_DOUBLE_EQ(ChiSquaredDistribution(3).Pdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquaredDistribution(3).Pdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquaredDistribution(3).Cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquaredDistribution(3).Sf(-1.0), 1.0);
}

class ChiSquaredQuantileRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ChiSquaredQuantileRoundTrip, CdfOfQuantileIsIdentity) {
  auto [dof, p] = GetParam();
  ChiSquaredDistribution d(dof);
  double x = d.Quantile(p);
  EXPECT_NEAR(d.Cdf(x), p, 1e-8) << "dof=" << dof << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChiSquaredQuantileRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 9, 25, 99),
                       ::testing::Values(0.001, 0.01, 0.1, 0.5, 0.9, 0.95,
                                         0.99, 0.9999)));

TEST(ChiSquaredTest, CriticalValueInvertssf) {
  for (int dof : {1, 2, 4, 9}) {
    ChiSquaredDistribution d(dof);
    for (double alpha : {0.10, 0.05, 0.01, 1e-4, 1e-8}) {
      double z = d.CriticalValue(alpha);
      EXPECT_NEAR(d.Sf(z) / alpha, 1.0, 1e-6)
          << "dof=" << dof << " alpha=" << alpha;
    }
  }
}

TEST(ChiSquaredTest, DeepTailPValue) {
  // A very large statistic must give a tiny but positive p-value
  // (direct Sf computation, no 1-Cdf cancellation).
  ChiSquaredDistribution d(1);
  double p = d.Sf(300.0);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1e-60);
}

}  // namespace
}  // namespace stats
}  // namespace sigsub
