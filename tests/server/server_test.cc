#include "server/server.h"

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "api/serde.h"
#include "common/str_util.h"
#include "engine/corpus.h"
#include "engine/engine.h"
#include "server/client.h"
#include "server/protocol.h"
#include "testing/test_util.h"

namespace sigsub {
namespace server {
namespace {

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

engine::Corpus TestCorpus() {
  std::vector<std::string> records;
  for (int i = 0; i < 8; ++i) {
    // Each record gets a planted run so MSS answers are non-trivial.
    std::string record;
    for (int j = 0; j < 24; ++j) record += (j % 2 == 0) ? 'a' : 'b';
    record += std::string(static_cast<size_t>(4 + i), 'a');
    records.push_back(std::move(record));
  }
  auto corpus = engine::Corpus::FromStrings(records, "ab");
  EXPECT_TRUE(corpus.ok()) << corpus.status().message();
  return *std::move(corpus);
}

/// Reusable executor gate: while closed, the server's executor hook
/// blocks before popping any admitted work, so queue-depth and in-flight
/// saturation are deterministic facts, not race outcomes.
class Gate {
 public:
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = false;
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

  /// Reopens the gate on every exit path: a failed ASSERT between Close()
  /// and Open() must not leave the server's executor (and so its
  /// destructor's Join) blocked forever.
  class OpenOnExit {
   public:
    explicit OpenOnExit(Gate& gate) : gate_(gate) {}
    ~OpenOnExit() { gate_.Open(); }

   private:
    Gate& gate_;
  };

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = true;
};

Result<LineClient> ConnectTo(const Server& server) {
  return LineClient::Connect("127.0.0.1", server.port(), 5000);
}

TEST(ServerTest, QueryReplyMatchesLocalEngineByte4Byte) {
  Server server(TestCorpus(), ServerOptions{});
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(LineClient client, ConnectTo(server));

  const std::string spec_text = "topt:seq=2,t=3";
  ASSERT_OK(client.SendLine(StrCat("QUERY ", spec_text)));
  ASSERT_OK_AND_ASSIGN(std::string reply, client.ReadLine());

  // A fresh local engine over the same corpus must serialize to the very
  // same bytes — the wire format cannot drift from the api layer.
  engine::Engine local;
  ASSERT_OK_AND_ASSIGN(api::QuerySpec spec, api::ParseQuery(spec_text));
  ASSERT_OK_AND_ASSIGN(std::vector<api::QueryResult> results,
                       local.ExecuteQueries(TestCorpus(), {spec}));
  EXPECT_EQ(reply,
            StrCat("OK ", protocol::FormatQueryResult(results[0], 64)));
}

TEST(ServerTest, SubstringsQueryOverTheWire) {
  Server server(TestCorpus(), ServerOptions{});
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(LineClient client, ConnectTo(server));

  const std::string spec_text =
      "substrings:seq=1,top=4,min_length=2,min_count=2";
  ASSERT_OK(client.SendLine(StrCat("QUERY ", spec_text)));
  ASSERT_OK_AND_ASSIGN(std::string reply, client.ReadLine());
  EXPECT_TRUE(StartsWith(reply, "OK kind=substrings seq=1 ")) << reply;

  engine::Engine local;
  ASSERT_OK_AND_ASSIGN(api::QuerySpec spec, api::ParseQuery(spec_text));
  ASSERT_OK_AND_ASSIGN(std::vector<api::QueryResult> results,
                       local.ExecuteQueries(TestCorpus(), {spec}));
  EXPECT_EQ(reply,
            StrCat("OK ", protocol::FormatQueryResult(results[0], 64)));

  // A repeat is served from the daemon's result cache: same rows, cache=1.
  ASSERT_OK(client.SendLine(StrCat("QUERY ", spec_text)));
  ASSERT_OK_AND_ASSIGN(std::string warm, client.ReadLine());
  results[0].cache_hit = true;
  EXPECT_EQ(warm,
            StrCat("OK ", protocol::FormatQueryResult(results[0], 64)));
}

TEST(ServerTest, PipelinedRepliesPreserveRequestOrder) {
  Server server(TestCorpus(), ServerOptions{});
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(LineClient client, ConnectTo(server));

  for (int i = 0; i < 6; ++i) {
    ASSERT_OK(client.SendLine(StrCat("QUERY mss:seq=", i)));
  }
  for (int i = 0; i < 6; ++i) {
    ASSERT_OK_AND_ASSIGN(std::string reply, client.ReadLine());
    EXPECT_TRUE(StartsWith(reply, StrCat("OK kind=mss seq=", i, " ")))
        << reply;
  }
}

TEST(ServerTest, ControlCommandsAndQuit) {
  Server server(TestCorpus(), ServerOptions{});
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(LineClient client, ConnectTo(server));

  ASSERT_OK(client.SendLine("PING"));
  ASSERT_OK_AND_ASSIGN(std::string pong, client.ReadLine());
  EXPECT_EQ(pong, "OK pong");

  ASSERT_OK(client.SendLine("HEALTH"));
  ASSERT_OK_AND_ASSIGN(std::string health, client.ReadLine());
  EXPECT_TRUE(StartsWith(health, "OK status=serving uptime_ms=")) << health;

  ASSERT_OK(client.SendLine("STATS"));
  ASSERT_OK_AND_ASSIGN(std::string stats, client.ReadLine());
  EXPECT_TRUE(StartsWith(stats, "OK uptime_ms=")) << stats;
  // The engine stats ride along on the same line (satellite contract:
  // one snapshot struct feeds both STATS and the CLI).
  EXPECT_NE(stats.find(" queries="), std::string::npos) << stats;
  EXPECT_NE(stats.find(" cache_hits="), std::string::npos) << stats;
  EXPECT_NE(stats.find(" streams_open="), std::string::npos) << stats;

  ASSERT_OK(client.SendLine("QUIT"));
  ASSERT_OK_AND_ASSIGN(std::string bye, client.ReadLine());
  EXPECT_EQ(bye, "OK bye");
  EXPECT_FALSE(client.ReadLine(2000).ok());  // Server closed after flush.
}

TEST(ServerTest, ProtocolAndValidationErrors) {
  Server server(TestCorpus(), ServerOptions{});
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(LineClient client, ConnectTo(server));

  ASSERT_OK(client.SendLine("FROB everything"));
  ASSERT_OK_AND_ASSIGN(std::string proto, client.ReadLine());
  EXPECT_TRUE(StartsWith(proto, "ERR EPROTO ")) << proto;

  // Parses fine, fails engine validation (sequence out of range).
  ASSERT_OK(client.SendLine("QUERY mss:seq=99"));
  ASSERT_OK_AND_ASSIGN(std::string invalid, client.ReadLine());
  EXPECT_TRUE(StartsWith(invalid, "ERR EINVALID ")) << invalid;

  ASSERT_OK(client.SendLine("STREAM.SNAPSHOT nope"));
  ASSERT_OK_AND_ASSIGN(std::string missing, client.ReadLine());
  EXPECT_TRUE(StartsWith(missing, "ERR ENOTFOUND ")) << missing;

  ASSERT_OK(client.SendLine("SUBSCRIBE nope"));
  ASSERT_OK_AND_ASSIGN(std::string no_sub, client.ReadLine());
  EXPECT_TRUE(StartsWith(no_sub, "ERR ENOTFOUND ")) << no_sub;

  EXPECT_GE(server.stats().protocol_errors, 1);
}

TEST(ServerTest, BadQueryInSliceDoesNotFailNeighbors) {
  // Both queries land in one executor slice; batch validation fails the
  // whole batch by engine contract, so the server must fall back to
  // per-query execution and fail only the bad one.
  Gate gate;
  ServerOptions options;
  options.executor_hook = [&gate] { gate.Wait(); };
  Server server(TestCorpus(), options);
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(LineClient client, ConnectTo(server));

  gate.Close();
  Gate::OpenOnExit reopen(gate);
  ASSERT_OK(client.SendLine("QUERY mss:seq=0"));
  ASSERT_OK(client.SendLine("QUERY mss:seq=99"));
  gate.Open();

  ASSERT_OK_AND_ASSIGN(std::string good, client.ReadLine());
  EXPECT_TRUE(StartsWith(good, "OK kind=mss seq=0 ")) << good;
  ASSERT_OK_AND_ASSIGN(std::string bad, client.ReadLine());
  EXPECT_TRUE(StartsWith(bad, "ERR EINVALID ")) << bad;
}

TEST(ServerTest, StreamLifecycleWithSubscriberPushes) {
  Server server(TestCorpus(), ServerOptions{});
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(LineClient producer, ConnectTo(server));
  ASSERT_OK_AND_ASSIGN(LineClient watcher, ConnectTo(server));

  ASSERT_OK(producer.SendLine(
      "STREAM.CREATE s1 probs=0.9;0.1 alpha=0.0001 max_window=64"));
  ASSERT_OK_AND_ASSIGN(std::string created, producer.ReadLine());
  EXPECT_EQ(created, "OK created s1");

  ASSERT_OK(watcher.SendLine("SUBSCRIBE s1"));
  ASSERT_OK_AND_ASSIGN(std::string subscribed, watcher.ReadLine());
  EXPECT_EQ(subscribed, "OK subscribed s1");

  // 512 symbols of the rare letter against a 0.9/0.1 null: the windowed
  // X² is enormous, so calibrated alarms are certain.
  ASSERT_OK(producer.SendLine(
      StrCat("STREAM.APPEND s1 ", std::string(512, '1'))));
  ASSERT_OK_AND_ASSIGN(std::string appended, producer.ReadLine());
  ASSERT_TRUE(StartsWith(appended, "OK alarms=")) << appended;
  const int64_t alarms = std::stoll(appended.substr(10));
  ASSERT_GT(alarms, 0);

  // The subscriber receives exactly one ALARM push per raised alarm.
  for (int64_t i = 0; i < alarms; ++i) {
    ASSERT_OK_AND_ASSIGN(std::string push, watcher.ReadLine());
    EXPECT_TRUE(StartsWith(push, "ALARM stream=s1 end=")) << push;
  }

  ASSERT_OK(producer.SendLine("STREAM.SNAPSHOT s1"));
  ASSERT_OK_AND_ASSIGN(std::string snapshot, producer.ReadLine());
  EXPECT_TRUE(StartsWith(
      snapshot, StrCat("OK stream=s1 position=512 alarms=", alarms)))
      << snapshot;

  // The producer is not subscribed: no pushes on its connection; the
  // next reply is the close acknowledgement.
  ASSERT_OK(producer.SendLine("STREAM.CLOSE s1"));
  ASSERT_OK_AND_ASSIGN(std::string closed, producer.ReadLine());
  EXPECT_EQ(closed, "OK closed s1");

  EXPECT_EQ(server.stats().alarms_pushed, alarms);
}

TEST(ServerTest, ShedsLoadWithBusyWhenAdmissionQueueFull) {
  Gate gate;
  ServerOptions options;
  options.max_queue = 1;
  options.executor_hook = [&gate] { gate.Wait(); };
  Server server(TestCorpus(), options);
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(LineClient client, ConnectTo(server));

  gate.Close();
  Gate::OpenOnExit reopen(gate);
  // First query fills the queue (the gated executor cannot pop it);
  // the second is shed with the distinct EBUSY code and never executes.
  ASSERT_OK(client.SendLine("QUERY mss:seq=0"));
  ASSERT_OK(client.SendLine("QUERY mss:seq=1"));
  ASSERT_OK_AND_ASSIGN(std::string shed, client.ReadLine());
  EXPECT_TRUE(StartsWith(shed, "ERR EBUSY ")) << shed;

  gate.Open();
  ASSERT_OK_AND_ASSIGN(std::string served, client.ReadLine());
  EXPECT_TRUE(StartsWith(served, "OK kind=mss seq=0 ")) << served;

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed_busy, 1);
  EXPECT_EQ(stats.requests_admitted, 1);
}

TEST(ServerTest, EnforcesPerClientInflightQuota) {
  Gate gate;
  ServerOptions options;
  options.max_inflight_per_client = 1;
  options.executor_hook = [&gate] { gate.Wait(); };
  Server server(TestCorpus(), options);
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(LineClient greedy, ConnectTo(server));
  ASSERT_OK_AND_ASSIGN(LineClient modest, ConnectTo(server));

  gate.Close();
  Gate::OpenOnExit reopen(gate);
  ASSERT_OK(greedy.SendLine("QUERY mss:seq=0"));
  ASSERT_OK(greedy.SendLine("QUERY mss:seq=1"));
  // The quota is per connection: the refusal is immediate and names
  // EQUOTA, and a different client is unaffected.
  ASSERT_OK_AND_ASSIGN(std::string quota, greedy.ReadLine());
  EXPECT_TRUE(StartsWith(quota, "ERR EQUOTA ")) << quota;
  ASSERT_OK(modest.SendLine("QUERY mss:seq=2"));

  gate.Open();
  ASSERT_OK_AND_ASSIGN(std::string greedy_reply, greedy.ReadLine());
  EXPECT_TRUE(StartsWith(greedy_reply, "OK kind=mss seq=0 "))
      << greedy_reply;
  ASSERT_OK_AND_ASSIGN(std::string modest_reply, modest.ReadLine());
  EXPECT_TRUE(StartsWith(modest_reply, "OK kind=mss seq=2 "))
      << modest_reply;
  EXPECT_EQ(server.stats().shed_quota, 1);
}

TEST(ServerTest, IdleConnectionsTimeOutWithExplicitCode) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  Server server(TestCorpus(), options);
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(LineClient client, ConnectTo(server));

  ASSERT_OK_AND_ASSIGN(std::string timeout, client.ReadLine(5000));
  EXPECT_TRUE(StartsWith(timeout, "ERR ETIMEOUT ")) << timeout;
  EXPECT_FALSE(client.ReadLine(2000).ok());  // Closed after the notice.
  EXPECT_EQ(server.stats().idle_timeouts, 1);
}

TEST(ServerTest, OverlongLineGetsTooBigThenClose) {
  ServerOptions options;
  options.max_line_bytes = 64;
  Server server(TestCorpus(), options);
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(LineClient client, ConnectTo(server));

  ASSERT_OK(client.SendLine(std::string(256, 'q')));
  ASSERT_OK_AND_ASSIGN(std::string too_big, client.ReadLine());
  EXPECT_TRUE(StartsWith(too_big, "ERR ETOOBIG ")) << too_big;
  EXPECT_FALSE(client.ReadLine(2000).ok());
}

TEST(ServerTest, ConnectionCapRefusesWithBusy) {
  ServerOptions options;
  options.max_connections = 1;
  Server server(TestCorpus(), options);
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(LineClient first, ConnectTo(server));
  ASSERT_OK(first.SendLine("PING"));
  ASSERT_OK_AND_ASSIGN(std::string pong, first.ReadLine());
  EXPECT_EQ(pong, "OK pong");

  ASSERT_OK_AND_ASSIGN(LineClient second, ConnectTo(server));
  ASSERT_OK_AND_ASSIGN(std::string refused, second.ReadLine());
  EXPECT_EQ(refused, "ERR EBUSY server full");
  EXPECT_FALSE(second.ReadLine(2000).ok());

  // The first connection is unaffected by the refusal next door.
  ASSERT_OK(first.SendLine("PING"));
  ASSERT_OK_AND_ASSIGN(std::string still, first.ReadLine());
  EXPECT_EQ(still, "OK pong");
}

/// The acceptance scenario from the issue: >= 8 concurrent clients mixing
/// one-shot queries and stream subscriptions, a SIGTERM-style drain
/// arriving with everything in flight, zero admitted requests dropped,
/// and post-drain work shed with EDRAIN.
TEST(ServerTest, GracefulDrainLosesNothingAndShedsNewWork) {
  Gate gate;
  ServerOptions options;
  options.max_queue = 512;
  options.max_inflight_per_client = 64;
  options.drain_timeout_ms = 30000;  // The test controls drain pacing.
  options.executor_hook = [&gate] { gate.Wait(); };
  Server server(TestCorpus(), options);
  ASSERT_OK(server.Start());

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 8;

  // A watcher subscribes before the storm (stream setup runs with the
  // gate open, so its replies arrive immediately).
  ASSERT_OK_AND_ASSIGN(LineClient watcher, ConnectTo(server));
  ASSERT_OK(watcher.SendLine(
      "STREAM.CREATE burst probs=0.9;0.1 alpha=0.0001 max_window=64"));
  ASSERT_OK_AND_ASSIGN(std::string created, watcher.ReadLine());
  EXPECT_EQ(created, "OK created burst");
  ASSERT_OK(watcher.SendLine("SUBSCRIBE burst"));
  ASSERT_OK_AND_ASSIGN(std::string subscribed, watcher.ReadLine());
  EXPECT_EQ(subscribed, "OK subscribed burst");

  std::vector<LineClient> clients;
  for (int c = 0; c < kClients; ++c) {
    ASSERT_OK_AND_ASSIGN(LineClient client, ConnectTo(server));
    clients.push_back(std::move(client));
  }

  // STREAM.CREATE above was itself an admitted engine-bound request.
  const int64_t admitted_before = server.stats().requests_admitted;

  // The drain prober must already be connected: draining closes the
  // listener, so EDRAIN is only observable on existing connections.
  ASSERT_OK_AND_ASSIGN(LineClient late, ConnectTo(server));

  // Freeze the executor, then pipeline the full mixed workload: every
  // request below is ADMITTED (the queue is deep enough) while none can
  // execute yet.
  gate.Close();
  Gate::OpenOnExit reopen(gate);
  for (int c = 0; c < kClients; ++c) {
    for (int q = 0; q < kQueriesPerClient; ++q) {
      if (q == kQueriesPerClient - 1 && c % 2 == 1) {
        // Odd clients end with a stream append instead of a query.
        ASSERT_OK(clients[c].SendLine(
            StrCat("STREAM.APPEND burst ", std::string(64, '1'))));
      } else {
        ASSERT_OK(clients[c].SendLine(StrCat("QUERY mss:seq=", q % 8)));
      }
    }
  }
  // Give the I/O thread a moment to admit everything before draining.
  const int64_t expected =
      admitted_before + static_cast<int64_t>(kClients) * kQueriesPerClient;
  for (int spin = 0;
       spin < 500 && server.stats().requests_admitted < expected; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(server.stats().requests_admitted, expected);

  // SIGTERM arrives (the CLI handler calls exactly this).
  server.RequestDrain();

  // New work is refused with the distinct drain code...
  ASSERT_OK(late.SendLine("QUERY mss:seq=0"));
  ASSERT_OK_AND_ASSIGN(std::string drain_shed, late.ReadLine());
  EXPECT_TRUE(StartsWith(drain_shed, "ERR EDRAIN ")) << drain_shed;

  // ...then the backlog executes to completion: every admitted request
  // gets its reply — zero drops across the drain.
  gate.Open();
  for (int c = 0; c < kClients; ++c) {
    for (int q = 0; q < kQueriesPerClient; ++q) {
      ASSERT_OK_AND_ASSIGN(std::string reply, clients[c].ReadLine(15000));
      if (q == kQueriesPerClient - 1 && c % 2 == 1) {
        EXPECT_TRUE(StartsWith(reply, "OK alarms=")) << reply;
      } else {
        EXPECT_TRUE(StartsWith(reply, StrCat("OK kind=mss seq=", q % 8)))
            << reply;
      }
    }
  }

  server.Join();
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_admitted, expected);
  EXPECT_GE(stats.shed_drain, 1);
  EXPECT_EQ(stats.shed_busy, 0);
  EXPECT_EQ(stats.shed_quota, 0);

  // Post-drain the sockets are closed (after their buffers flushed).
  EXPECT_FALSE(clients[0].ReadLine(2000).ok());
}

TEST(ServerTest, QueriesFromConcurrentClientsShareTheCache) {
  Server server(TestCorpus(), ServerOptions{});
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(LineClient first, ConnectTo(server));
  ASSERT_OK_AND_ASSIGN(LineClient second, ConnectTo(server));

  ASSERT_OK(first.SendLine("QUERY mss:seq=4"));
  ASSERT_OK_AND_ASSIGN(std::string cold, first.ReadLine());
  EXPECT_TRUE(StartsWith(cold, "OK kind=mss seq=4 cache=0 ")) << cold;

  // The daemon's engine is shared: another connection's identical query
  // is a cache hit with the same payload bytes after the cache flag.
  ASSERT_OK(second.SendLine("QUERY mss:seq=4"));
  ASSERT_OK_AND_ASSIGN(std::string warm, second.ReadLine());
  EXPECT_TRUE(StartsWith(warm, "OK kind=mss seq=4 cache=1 ")) << warm;
  EXPECT_EQ(cold.substr(cold.find("matches=")),
            warm.substr(warm.find("matches=")));
}

}  // namespace
}  // namespace server
}  // namespace sigsub
