#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "common/fault_injection.h"
#include "common/posix_io.h"
#include "common/str_util.h"
#include "core/streaming.h"
#include "engine/corpus.h"
#include "engine/stream_manager.h"
#include "persist/journal.h"
#include "persist/state_store.h"
#include "server/client.h"
#include "server/server.h"
#include "testing/test_util.h"

namespace sigsub {
namespace server {
namespace {

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

engine::Corpus TestCorpus() {
  std::vector<std::string> records;
  for (int i = 0; i < 4; ++i) {
    records.push_back("abababab" + std::string(static_cast<size_t>(4 + i), 'a'));
  }
  auto corpus = engine::Corpus::FromStrings(records, "ab");
  EXPECT_TRUE(corpus.ok()) << corpus.status().message();
  return *std::move(corpus);
}

Result<LineClient> ConnectTo(const Server& server) {
  return LineClient::Connect("127.0.0.1", server.port(), 5000);
}

class ServerPersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/sigsub_server_persist_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    options_.state_dir = dir_;
    // No timer snapshots: the tests control exactly when the journal is
    // truncated (drain snapshots still fire).
    options_.snapshot_interval_ms = 0;
    options_.fsync_policy = persist::FsyncPolicy::kNone;
  }

  void TearDown() override {
    fault::Disarm();
    ::unlink(persist::StateStore::JournalPath(dir_).c_str());
    ::unlink(persist::StateStore::SnapshotPath(dir_).c_str());
    ::unlink(persist::StateStore::CachePath(dir_).c_str());
    ::rmdir(dir_.c_str());
  }

  std::string dir_;
  ServerOptions options_;
};

TEST_F(ServerPersistTest, RestartRestoresStreamsBitIdentically) {
  std::string snapshot_before;
  {
    Server server(TestCorpus(), options_);
    ASSERT_OK(server.Start());
    EXPECT_FALSE(server.recovery().snapshot_loaded);  // Cold start.
    ASSERT_OK_AND_ASSIGN(LineClient client, ConnectTo(server));

    ASSERT_OK(client.SendLine(
        "STREAM.CREATE s1 probs=0.9;0.1 alpha=0.0001 max_window=64"));
    ASSERT_OK_AND_ASSIGN(std::string created, client.ReadLine());
    EXPECT_EQ(created, "OK created s1");
    ASSERT_OK(client.SendLine(
        StrCat("STREAM.APPEND s1 ", std::string(256, '1'))));
    ASSERT_OK_AND_ASSIGN(std::string appended, client.ReadLine());
    ASSERT_TRUE(StartsWith(appended, "OK alarms=")) << appended;

    ASSERT_OK(client.SendLine("STREAM.SNAPSHOT s1"));
    ASSERT_OK_AND_ASSIGN(snapshot_before, client.ReadLine());
    ASSERT_TRUE(StartsWith(snapshot_before, "OK stream=s1 position=256 "))
        << snapshot_before;

    server.RequestDrain();
    server.Join();
  }

  // A brand new process image: same state dir, fresh server.
  Server server(TestCorpus(), options_);
  ASSERT_OK(server.Start());
  // Drain snapshotted, so recovery comes from the snapshot (journal
  // truncated) — not a journal replay.
  EXPECT_TRUE(server.recovery().snapshot_loaded);
  EXPECT_EQ(server.recovery().streams_restored, 1);
  EXPECT_EQ(server.recovery().journal_records_applied, 0);

  ASSERT_OK_AND_ASSIGN(LineClient client, ConnectTo(server));
  ASSERT_OK(client.SendLine("STREAM.SNAPSHOT s1"));
  ASSERT_OK_AND_ASSIGN(std::string snapshot_after, client.ReadLine());
  // The whole point: byte-for-byte the same detector state over the wire.
  EXPECT_EQ(snapshot_after, snapshot_before);

  // The restored stream is live, not a husk: appends keep working.
  ASSERT_OK(client.SendLine(
      StrCat("STREAM.APPEND s1 ", std::string(16, '0'))));
  ASSERT_OK_AND_ASSIGN(std::string more, client.ReadLine());
  EXPECT_TRUE(StartsWith(more, "OK alarms=")) << more;
}

TEST_F(ServerPersistTest, KilledServerReplaysItsJournal) {
  // A SIGKILL leaves a journal but no fresh snapshot (the destructor
  // path drains and snapshots, so simulate the kill by building the
  // journal-only state directory with the same StateStore the server
  // uses).
  {
    engine::StreamManager streams;
    persist::RecoveryStats recovery;
    ASSERT_OK_AND_ASSIGN(
        persist::StateStore store,
        persist::StateStore::Open(
            dir_, {.fsync_policy = persist::FsyncPolicy::kNone}, &streams,
            nullptr, &recovery));
    core::StreamingDetector::Options detector_options;
    detector_options.max_window = 32;
    detector_options.alpha = 1e-4;
    ASSERT_OK(store.RecordCreate("s1", {0.5, 0.5}, detector_options));
    ASSERT_OK(store.RecordAppend("s1", std::vector<uint8_t>{0, 1, 0, 1}));
  }

  Server server(TestCorpus(), options_);
  ASSERT_OK(server.Start());
  EXPECT_FALSE(server.recovery().snapshot_loaded);
  EXPECT_EQ(server.recovery().journal_records_applied, 2);

  ASSERT_OK_AND_ASSIGN(LineClient client, ConnectTo(server));
  ASSERT_OK(client.SendLine("STREAM.SNAPSHOT s1"));
  ASSERT_OK_AND_ASSIGN(std::string snapshot, client.ReadLine());
  EXPECT_TRUE(StartsWith(snapshot, "OK stream=s1 position=4 ")) << snapshot;
}

TEST_F(ServerPersistTest, JournalFailureYieldsEpersistAndNoStateChange) {
  options_.fsync_policy = persist::FsyncPolicy::kAlways;
  Server server(TestCorpus(), options_);
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(LineClient client, ConnectTo(server));

  ASSERT_OK(client.SendLine(
      "STREAM.CREATE s1 probs=0.5;0.5 alpha=0.0001 max_window=32"));
  ASSERT_OK_AND_ASSIGN(std::string created, client.ReadLine());
  EXPECT_EQ(created, "OK created s1");

  // Fault the journal's NEXT fsync. An fsync fault (not a write fault)
  // because client sockets share the RawWrite shim but never fsync.
  ASSERT_OK(fault::Arm("fsync:1:EIO"));
  ASSERT_OK(client.SendLine("STREAM.APPEND s1 0101"));
  ASSERT_OK_AND_ASSIGN(std::string refused, client.ReadLine());
  fault::Disarm();
  EXPECT_TRUE(StartsWith(refused, "ERR EPERSIST ")) << refused;
  EXPECT_GE(server.stats().persist_errors, 1);

  // The refused append was never applied: position is still 0.
  ASSERT_OK(client.SendLine("STREAM.SNAPSHOT s1"));
  ASSERT_OK_AND_ASSIGN(std::string snapshot, client.ReadLine());
  EXPECT_TRUE(StartsWith(snapshot, "OK stream=s1 position=0 ")) << snapshot;

  // STATS reports the persist failure on the wire too.
  ASSERT_OK(client.SendLine("STATS"));
  ASSERT_OK_AND_ASSIGN(std::string stats, client.ReadLine());
  EXPECT_NE(stats.find(" persist_errors="), std::string::npos) << stats;
}

TEST_F(ServerPersistTest, CorruptSnapshotFailsStartupByName) {
  {
    Server server(TestCorpus(), options_);
    ASSERT_OK(server.Start());
    ASSERT_OK_AND_ASSIGN(LineClient client, ConnectTo(server));
    ASSERT_OK(client.SendLine(
        "STREAM.CREATE s1 probs=0.5;0.5 alpha=0.0001 max_window=32"));
    ASSERT_OK_AND_ASSIGN(std::string created, client.ReadLine());
    EXPECT_EQ(created, "OK created s1");
    server.RequestDrain();
    server.Join();
  }
  {
    int fd = ::open(persist::StateStore::SnapshotPath(dir_).c_str(),
                    O_WRONLY | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_OK(WriteFdAll(fd, "this was never a snapshot"));
    ::close(fd);
  }
  Server server(TestCorpus(), options_);
  Status status = server.Start();
  // A corrupt snapshot must be a named refusal to start — silently
  // serving empty state would invent data loss.
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServerPersistTest, ClosedStreamsStayClosedAcrossRestart) {
  {
    Server server(TestCorpus(), options_);
    ASSERT_OK(server.Start());
    ASSERT_OK_AND_ASSIGN(LineClient client, ConnectTo(server));
    ASSERT_OK(client.SendLine(
        "STREAM.CREATE gone probs=0.5;0.5 alpha=0.0001 max_window=32"));
    ASSERT_OK_AND_ASSIGN(std::string created, client.ReadLine());
    EXPECT_EQ(created, "OK created gone");
    ASSERT_OK(client.SendLine("STREAM.CLOSE gone"));
    ASSERT_OK_AND_ASSIGN(std::string closed, client.ReadLine());
    EXPECT_EQ(closed, "OK closed gone");
  }  // The destructor drains: the snapshot records the stream as gone.

  Server server(TestCorpus(), options_);
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(LineClient client, ConnectTo(server));
  ASSERT_OK(client.SendLine("STREAM.SNAPSHOT gone"));
  ASSERT_OK_AND_ASSIGN(std::string reply, client.ReadLine());
  EXPECT_TRUE(StartsWith(reply, "ERR ENOTFOUND ")) << reply;
}

}  // namespace
}  // namespace server
}  // namespace sigsub
