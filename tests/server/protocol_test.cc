#include "server/protocol.h"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "api/query.h"
#include "api/serde.h"
#include "testing/test_util.h"

namespace sigsub {
namespace server {
namespace protocol {
namespace {

TEST(ProtocolErrorTest, CodeNamesAndRetryability) {
  EXPECT_EQ(ErrorCodeName(ErrorCode::kProto), "EPROTO");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kInvalid), "EINVALID");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kNotFound), "ENOTFOUND");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kBusy), "EBUSY");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kQuota), "EQUOTA");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kDrain), "EDRAIN");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kTimeout), "ETIMEOUT");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kTooBig), "ETOOBIG");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kInternal), "EINTERNAL");

  // Exactly the load-shedding codes are retryable: backoff-and-retry on
  // EBUSY/EDRAIN, never on client mistakes.
  EXPECT_TRUE(IsRetryable(ErrorCode::kBusy));
  EXPECT_TRUE(IsRetryable(ErrorCode::kDrain));
  EXPECT_FALSE(IsRetryable(ErrorCode::kProto));
  EXPECT_FALSE(IsRetryable(ErrorCode::kInvalid));
  EXPECT_FALSE(IsRetryable(ErrorCode::kQuota));
  EXPECT_FALSE(IsRetryable(ErrorCode::kTimeout));
}

TEST(ProtocolErrorTest, FormatErrorAndStatusMapping) {
  EXPECT_EQ(FormatError(ErrorCode::kBusy, "queue full"),
            "ERR EBUSY queue full");
  EXPECT_EQ(ErrorCodeForStatus(Status::NotFound("x")), ErrorCode::kNotFound);
  EXPECT_EQ(ErrorCodeForStatus(Status::InvalidArgument("x")),
            ErrorCode::kInvalid);
  EXPECT_EQ(ErrorCodeForStatus(Status::OutOfRange("x")), ErrorCode::kInvalid);
  EXPECT_EQ(ErrorCodeForStatus(Status::Internal("x")), ErrorCode::kInternal);
  EXPECT_EQ(ErrorCodeForStatus(Status::IOError("x")), ErrorCode::kInternal);
}

TEST(ProtocolParseTest, QueryTakesRestOfLineVerbatim) {
  ASSERT_OK_AND_ASSIGN(Request request,
                       ParseRequest("QUERY topt:seq=2,t=5"));
  EXPECT_EQ(request.kind, CommandKind::kQuery);
  EXPECT_EQ(request.query.kind(), api::QueryKind::kTopT);
  EXPECT_EQ(request.query.sequence_index, 2);

  // JSON specs contain spaces; the QUERY payload must survive them.
  ASSERT_OK_AND_ASSIGN(
      Request json_request,
      ParseRequest("QUERY {\"kind\": \"mss\", \"seq\": 1}"));
  EXPECT_EQ(json_request.kind, CommandKind::kQuery);
  EXPECT_EQ(json_request.query.kind(), api::QueryKind::kMss);
  EXPECT_EQ(json_request.query.sequence_index, 1);

  EXPECT_FALSE(ParseRequest("QUERY").ok());
  EXPECT_FALSE(ParseRequest("QUERY   ").ok());
  EXPECT_FALSE(ParseRequest("QUERY nonsense:").ok());
}

TEST(ProtocolParseTest, StreamCreateOptionsAndValidation) {
  ASSERT_OK_AND_ASSIGN(
      Request request,
      ParseRequest(
          "STREAM.CREATE s1 probs=0.25;0.75 alpha=0.001 max_window=64"));
  EXPECT_EQ(request.kind, CommandKind::kStreamCreate);
  EXPECT_EQ(request.stream, "s1");
  ASSERT_EQ(request.probs.size(), 2u);
  EXPECT_DOUBLE_EQ(request.probs[0], 0.25);
  EXPECT_DOUBLE_EQ(request.probs[1], 0.75);
  EXPECT_DOUBLE_EQ(request.detector.alpha, 0.001);
  EXPECT_EQ(request.detector.max_window, 64);

  EXPECT_FALSE(ParseRequest("STREAM.CREATE").ok());
  EXPECT_FALSE(ParseRequest("STREAM.CREATE s1").ok());  // probs required.
  EXPECT_FALSE(ParseRequest("STREAM.CREATE s1 probs=").ok());
  EXPECT_FALSE(ParseRequest("STREAM.CREATE s1 probs=0.5;0.5 bogus=1").ok());
  EXPECT_FALSE(
      ParseRequest("STREAM.CREATE s1 probs=0.5;0.5 alpha=zero").ok());
}

TEST(ProtocolParseTest, StreamAppendDecodesSymbols) {
  ASSERT_OK_AND_ASSIGN(Request request,
                       ParseRequest("STREAM.APPEND s1 0110"));
  EXPECT_EQ(request.kind, CommandKind::kStreamAppend);
  EXPECT_EQ(request.stream, "s1");
  EXPECT_EQ(request.symbols, (std::vector<uint8_t>{0, 1, 1, 0}));

  EXPECT_FALSE(ParseRequest("STREAM.APPEND s1").ok());
  EXPECT_FALSE(ParseRequest("STREAM.APPEND s1 01 23").ok());
  EXPECT_FALSE(ParseRequest("STREAM.APPEND s1 01X0").ok());
}

TEST(ProtocolParseTest, OneNameAndBareCommands) {
  for (const auto& [line, kind] :
       std::vector<std::pair<std::string, CommandKind>>{
           {"STREAM.SNAPSHOT s", CommandKind::kStreamSnapshot},
           {"STREAM.CLOSE s", CommandKind::kStreamClose},
           {"SUBSCRIBE s", CommandKind::kSubscribe},
           {"UNSUBSCRIBE s", CommandKind::kUnsubscribe}}) {
    ASSERT_OK_AND_ASSIGN(Request request, ParseRequest(line));
    EXPECT_EQ(request.kind, kind) << line;
    EXPECT_EQ(request.stream, "s") << line;
    EXPECT_FALSE(ParseRequest(line + " extra").ok()) << line;
  }
  for (const auto& [line, kind] :
       std::vector<std::pair<std::string, CommandKind>>{
           {"STATS", CommandKind::kStats},
           {"HEALTH", CommandKind::kHealth},
           {"PING", CommandKind::kPing},
           {"QUIT", CommandKind::kQuit}}) {
    ASSERT_OK_AND_ASSIGN(Request request, ParseRequest(line));
    EXPECT_EQ(request.kind, kind) << line;
    EXPECT_FALSE(ParseRequest(line + " extra").ok()) << line;
  }
  EXPECT_FALSE(ParseRequest("FROB").ok());
  EXPECT_FALSE(ParseRequest("ping").ok());  // Verbs are case-sensitive.
}

TEST(ProtocolParseTest, EngineBoundClassification) {
  EXPECT_TRUE(IsEngineBound(CommandKind::kQuery));
  EXPECT_TRUE(IsEngineBound(CommandKind::kStreamCreate));
  EXPECT_TRUE(IsEngineBound(CommandKind::kStreamAppend));
  EXPECT_TRUE(IsEngineBound(CommandKind::kStreamSnapshot));
  EXPECT_TRUE(IsEngineBound(CommandKind::kStreamClose));
  EXPECT_FALSE(IsEngineBound(CommandKind::kSubscribe));
  EXPECT_FALSE(IsEngineBound(CommandKind::kUnsubscribe));
  EXPECT_FALSE(IsEngineBound(CommandKind::kStats));
  EXPECT_FALSE(IsEngineBound(CommandKind::kHealth));
  EXPECT_FALSE(IsEngineBound(CommandKind::kPing));
  EXPECT_FALSE(IsEngineBound(CommandKind::kQuit));
}

TEST(ProtocolFormatTest, QueryResultRowsAndCap) {
  api::QueryResult result;
  result.kind = api::QueryKind::kTopT;
  result.sequence_index = 3;
  result.cache_hit = true;
  api::RankedPayload payload;
  payload.ranked = {{0, 4, 12.5}, {6, 8, 3.25}, {1, 2, 1.0}};
  result.payload = payload;

  EXPECT_EQ(FormatQueryResult(result, 64),
            "kind=topt seq=3 cache=1 matches=3 rows=0:4:12.5;6:8:3.25;1:2:1");
  // max_rows truncates the materialized rows but matches= keeps the
  // exact total — the client can tell truncation from absence.
  EXPECT_EQ(FormatQueryResult(result, 1),
            "kind=topt seq=3 cache=1 matches=3 rows=0:4:12.5");

  api::QueryResult empty;
  empty.kind = api::QueryKind::kMss;
  empty.payload = api::BestPayload{};
  EXPECT_EQ(FormatQueryResult(empty, 64),
            "kind=mss seq=0 cache=0 matches=0 rows=");
}

TEST(ProtocolFormatTest, SubstringsResultLineCarriesCountsAndPValues) {
  api::QueryResult result;
  result.kind = api::QueryKind::kSubstrings;
  result.sequence_index = 0;
  api::SubstringsPayload payload;
  payload.ranked = {{0, 4, 12.5}, {6, 8, 3.25}};
  payload.counts = {7, 2};
  payload.p_values = {0.25, 0.5};
  payload.match_count = 9;  // More matched than were materialized.
  result.payload = payload;
  EXPECT_EQ(FormatQueryResult(result, 64),
            "kind=substrings seq=0 cache=0 matches=9 "
            "rows=0:4:12.5:7:0.25;6:8:3.25:2:0.5");
  EXPECT_EQ(FormatQueryResult(result, 1),
            "kind=substrings seq=0 cache=0 matches=9 rows=0:4:12.5:7:0.25");
}

TEST(ProtocolFormatTest, AlarmLine) {
  core::StreamingDetector::Alarm alarm;
  alarm.end = 1000;
  alarm.length = 64;
  alarm.chi_square = 42.5;
  alarm.p_value = 1e-9;
  EXPECT_EQ(FormatAlarm("sensor", alarm),
            "ALARM stream=sensor end=1000 length=64 x2=42.5 p=1e-09");
}

TEST(ProtocolFormatTest, SnapshotLine) {
  engine::StreamSnapshot snapshot;
  snapshot.name = "s1";
  snapshot.position = 4096;
  snapshot.alarms_total = 7;
  snapshot.alarms_dropped = 2;
  snapshot.scales = {8, 16, 32};
  EXPECT_EQ(FormatSnapshot(snapshot),
            "stream=s1 position=4096 alarms=7 dropped=2 scales=3");
}

TEST(ProtocolCodecTest, SymbolRoundTrip) {
  std::vector<uint8_t> symbols;
  for (uint8_t s = 0; s < 36; ++s) symbols.push_back(s);
  std::string text = EncodeSymbols(symbols);
  EXPECT_EQ(text, "0123456789abcdefghijklmnopqrstuvwxyz");
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> decoded, DecodeSymbols(text));
  EXPECT_EQ(decoded, symbols);

  EXPECT_FALSE(DecodeSymbols("01A").ok());
  EXPECT_FALSE(DecodeSymbols("0 1").ok());
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> empty, DecodeSymbols(""));
  EXPECT_TRUE(empty.empty());
}

TEST(ProtocolCodecTest, ExtractLineFraming) {
  std::string buffer = "first\r\nsecond\npartial";
  auto line = ExtractLine(&buffer);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "first");  // CRLF tolerated.
  line = ExtractLine(&buffer);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "second");
  EXPECT_FALSE(ExtractLine(&buffer).has_value());
  EXPECT_EQ(buffer, "partial");  // Incomplete tail stays buffered.
}

// ---------------------------------------------------------------------
// Malformed-input regressions. These mirror the invariants the fuzz
// harness (fuzz/protocol_fuzz.cc) checks: any byte string must be either
// rejected with a status or accepted and round-trippable — never a crash.

TEST(ProtocolMalformedTest, TruncatedCommandsAreRejectedNotFatal) {
  for (const char* line :
       {"QUERY", "QUERY ", "STREAM.CREATE", "STREAM.APPEND",
        "STREAM.APPEND s", "STREAM.SNAPSHOT", "STREAM.CLOSE", "SUBSCRIBE",
        "STREAM.CREATE s", "QUERY kind=", "QUERY kind=mss model="}) {
    auto parsed = ParseRequest(line);
    EXPECT_FALSE(parsed.ok()) << "accepted truncated line: " << line;
  }
}

TEST(ProtocolMalformedTest, OverlongFieldsAreRejectedNotFatal) {
  // A kilobytes-long stream name or symbol payload may be accepted (the
  // protocol does not impose a length cap at parse level) but must never
  // crash or truncate silently.
  const std::string long_name(4096, 'a');
  auto named = ParseRequest("STREAM.APPEND " + long_name + " 0101");
  if (named.ok()) {
    EXPECT_EQ(named->stream, long_name);
  }
  const std::string long_symbols(1 << 16, '0');
  auto append = ParseRequest("STREAM.APPEND s " + long_symbols);
  if (append.ok()) {
    EXPECT_EQ(append->symbols.size(), long_symbols.size());
  }
  EXPECT_FALSE(ParseRequest(std::string(1 << 16, 'Q')).ok());
}

TEST(ProtocolMalformedTest, NonUtf8BytesAreRejectedNotFatal) {
  const std::string raw{"\xff\xfe\x80\x01QUERY mss\x00trailer", 21};
  EXPECT_FALSE(ParseRequest(raw).ok());
  std::string buffer = raw + "\n";
  auto line = ExtractLine(&buffer);
  ASSERT_TRUE(line.has_value());
  EXPECT_FALSE(ParseRequest(*line).ok());
}

TEST(ProtocolMalformedTest, NestedParenAbuseTerminates) {
  std::string bomb = "QUERY markov(";
  for (int i = 0; i < 64; ++i) bomb += "markov(";
  EXPECT_FALSE(ParseRequest(bomb).ok());
  EXPECT_FALSE(ParseRequest("QUERY mss model=markov(0.5;0.5").ok());
}

// Replays every committed fuzz seed input through the same framing +
// parse + round-trip pipeline as the harness. Keeping this inside the
// unit suite means the corpus gates every build, not just fuzzer builds.
TEST(ProtocolMalformedTest, FuzzSeedCorpusReplays) {
  const std::filesystem::path dir =
      std::filesystem::path(SIGSUB_FUZZ_CORPUS_DIR) / "protocol";
  ASSERT_TRUE(std::filesystem::is_directory(dir))
      << "missing corpus dir " << dir;
  int replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string input{std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>()};
    std::string buffer = input;
    while (auto line = ExtractLine(&buffer)) {
      (void)ParseRequest(*line);
    }
    auto parsed = ParseRequest(input);
    if (parsed.ok() && parsed->kind == CommandKind::kQuery) {
      auto reparsed =
          api::ParseQuery(api::FormatQuery(parsed->query));
      ASSERT_TRUE(reparsed.ok()) << entry.path();
      EXPECT_EQ(*reparsed, parsed->query) << entry.path();
    }
    ++replayed;
  }
  EXPECT_GE(replayed, 20) << "corpus unexpectedly small in " << dir;
}

}  // namespace
}  // namespace protocol
}  // namespace server
}  // namespace sigsub
