#include "core/mss.h"

#include <cmath>
#include <string>
#include <tuple>

#include "core/naive.h"
#include "gtest/gtest.h"
#include "seq/alphabet.h"
#include "seq/generators.h"
#include "seq/rng.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

using ::sigsub::testing::Family;
using ::sigsub::testing::FamilyName;
using ::sigsub::testing::GenerateFamily;
using ::sigsub::testing::ScoringModel;

TEST(FindMssTest, ValidatesInput) {
  seq::Sequence empty(2);
  auto model = seq::MultinomialModel::Uniform(2);
  EXPECT_TRUE(FindMss(empty, model).status().IsInvalidArgument());

  seq::Sequence s = seq::Sequence::FromSymbols(3, {0, 1, 2}).value();
  EXPECT_TRUE(FindMss(s, model).status().IsInvalidArgument());
}

TEST(FindMssTest, SingleCharacterString) {
  auto model = seq::MultinomialModel::Make({0.25, 0.75}).value();
  seq::Sequence s = seq::Sequence::FromSymbols(2, {0}).value();
  auto result = FindMss(s, model);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best.start, 0);
  EXPECT_EQ(result->best.end, 1);
  EXPECT_NEAR(result->best.chi_square, 3.0, 1e-12);  // 1/0.25 − 1.
}

TEST(FindMssTest, AllSameCharacterStringPicksWholeString) {
  // For a run of the same character, X² grows linearly with length, so the
  // MSS is the full string.
  auto model = seq::MultinomialModel::Uniform(2);
  seq::Sequence s = seq::Sequence::FromSymbols(2, std::vector<uint8_t>(64, 1))
                        .value();
  auto result = FindMss(s, model);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best.start, 0);
  EXPECT_EQ(result->best.end, 64);
  EXPECT_NEAR(result->best.chi_square, 64.0, 1e-9);  // l(1/p − 1) = 64.
}

TEST(FindMssTest, PerfectlyAlternatingString) {
  // "0101...": the best substring is any single character (X² = 1);
  // longer windows are more balanced.
  auto model = seq::MultinomialModel::Uniform(2);
  std::vector<uint8_t> symbols;
  for (int i = 0; i < 50; ++i) symbols.push_back(i % 2);
  seq::Sequence s = seq::Sequence::FromSymbols(2, symbols).value();
  auto fast = FindMss(s, model);
  auto slow = NaiveFindMss(s, model);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_X2_EQ(fast->best.chi_square, slow->best.chi_square);
  EXPECT_NEAR(fast->best.chi_square, 1.0, 1e-9);
}

TEST(FindMssTest, PlantedAnomalyIsFound) {
  // Uniform background with a strongly biased window: the MSS must
  // essentially coincide with the planted window.
  seq::Rng rng(303);
  auto planted = seq::GenerateRegimes(
      2,
      {{2000, {0.5, 0.5}}, {300, {0.95, 0.05}}, {2000, {0.5, 0.5}}},
      rng);
  ASSERT_TRUE(planted.ok());
  auto model = seq::MultinomialModel::Uniform(2);
  auto result = FindMss(planted.value(), model);
  ASSERT_TRUE(result.ok());
  // Substantial overlap with [2000, 2300).
  int64_t overlap = std::min<int64_t>(result->best.end, 2300) -
                    std::max<int64_t>(result->best.start, 2000);
  EXPECT_GT(overlap, 250);
  EXPECT_GT(result->best.chi_square, 150.0);
}

TEST(FindMssTest, StatsAreCoherent) {
  seq::Rng rng(7);
  seq::Sequence s = seq::GenerateNull(2, 2000, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto result = FindMss(s, model);
  ASSERT_TRUE(result.ok());
  const ScanStats& st = result->stats;
  EXPECT_EQ(st.start_positions, 2000);
  // examined + skipped = total substrings.
  EXPECT_EQ(st.positions_examined + st.positions_skipped,
            TrivialScanPositions(2000));
  // The whole point: far fewer examined than the trivial scan.
  EXPECT_LT(st.positions_examined, TrivialScanPositions(2000) / 4);
}

TEST(FindMssTest, KernelAndWrapperAgree) {
  seq::Rng rng(15);
  seq::Sequence s = seq::GenerateNull(3, 500, rng);
  auto model = seq::MultinomialModel::Uniform(3);
  auto wrapped = FindMss(s, model);
  ASSERT_TRUE(wrapped.ok());
  seq::PrefixCounts counts(s);
  ChiSquareContext ctx(model);
  MssResult kernel = FindMss(counts, ctx);
  EXPECT_EQ(kernel.best.start, wrapped->best.start);
  EXPECT_EQ(kernel.best.end, wrapped->best.end);
  EXPECT_DOUBLE_EQ(kernel.best.chi_square, wrapped->best.chi_square);
}

// ---------------------------------------------------------------------------
// Equivalence sweep: the fast algorithm must return the same maximal X² as
// the exhaustive scan on every (n, k, family) combination.
// ---------------------------------------------------------------------------

class MssEquivalence
    : public ::testing::TestWithParam<std::tuple<int64_t, int, Family>> {};

TEST_P(MssEquivalence, FastMatchesNaive) {
  auto [n, k, family] = GetParam();
  if (family == Family::kBiased && k != 2) GTEST_SKIP();
  seq::Rng rng(static_cast<uint64_t>(n * 1000003 + k * 101 +
                                     static_cast<int>(family)));
  for (int trial = 0; trial < 3; ++trial) {
    seq::Sequence s = GenerateFamily(family, k, n, rng);
    seq::MultinomialModel model = ScoringModel(family, k);
    auto fast = FindMss(s, model);
    auto slow = NaiveFindMss(s, model);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_X2_EQ(fast->best.chi_square, slow->best.chi_square)
        << FamilyName(family) << " n=" << n << " k=" << k
        << " trial=" << trial << " fast=[" << fast->best.start << ","
        << fast->best.end << ") slow=[" << slow->best.start << ","
        << slow->best.end << ")";
    // The fast scan must never examine more substrings than trivial.
    EXPECT_LE(fast->stats.positions_examined,
              slow->stats.positions_examined);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MssEquivalence,
    ::testing::Combine(::testing::Values<int64_t>(1, 2, 3, 5, 16, 64, 256,
                                                  777),
                       ::testing::Values(2, 3, 5, 10),
                       ::testing::Values(Family::kNull, Family::kGeometric,
                                         Family::kHarmonic, Family::kMarkov,
                                         Family::kBiased)),
    [](const ::testing::TestParamInfo<MssEquivalence::ParamType>& info) {
      return FamilyName(std::get<2>(info.param)) + "_n" +
             std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

// Exhaustive tiny-string check: every binary string of length <= 10.
TEST(MssExhaustiveTest, AllBinaryStringsUpToLength10) {
  auto model = seq::MultinomialModel::Uniform(2);
  for (int64_t n = 1; n <= 10; ++n) {
    for (uint64_t bits = 0; bits < (1ULL << n); ++bits) {
      std::vector<uint8_t> symbols(n);
      for (int64_t i = 0; i < n; ++i) symbols[i] = (bits >> i) & 1;
      seq::Sequence s = seq::Sequence::FromSymbols(2, symbols).value();
      auto fast = FindMss(s, model);
      auto slow = NaiveFindMss(s, model);
      ASSERT_TRUE(fast.ok());
      ASSERT_TRUE(slow.ok());
      ASSERT_NEAR(fast->best.chi_square, slow->best.chi_square, 1e-9)
          << "n=" << n << " bits=" << bits;
    }
  }
}

// Skewed-model exhaustive check exercises the min-over-characters skip
// logic where the paper's single-character rule is ambiguous.
TEST(MssExhaustiveTest, SkewedModelAllBinaryStringsUpToLength9) {
  auto model = seq::MultinomialModel::Make({0.05, 0.95}).value();
  for (int64_t n = 1; n <= 9; ++n) {
    for (uint64_t bits = 0; bits < (1ULL << n); ++bits) {
      std::vector<uint8_t> symbols(n);
      for (int64_t i = 0; i < n; ++i) symbols[i] = (bits >> i) & 1;
      seq::Sequence s = seq::Sequence::FromSymbols(2, symbols).value();
      auto fast = FindMss(s, model);
      auto slow = NaiveFindMss(s, model);
      ASSERT_TRUE(fast.ok());
      ASSERT_TRUE(slow.ok());
      ASSERT_NEAR(fast->best.chi_square, slow->best.chi_square,
                  1e-9 * (1.0 + slow->best.chi_square))
          << "n=" << n << " bits=" << bits;
    }
  }
}

TEST(MssScalingTest, ExaminedPositionsGrowSubquadratically) {
  // Empirical reproduction of the paper's headline: ln(iterations) vs
  // ln(n) slope well below 2 (≈1.5) for null strings.
  seq::Rng rng(808);
  auto model = seq::MultinomialModel::Uniform(2);
  std::vector<double> log_n, log_iter;
  for (int64_t n : {1000, 2000, 4000, 8000, 16000}) {
    seq::Sequence s = seq::GenerateNull(2, n, rng);
    auto result = FindMss(s, model);
    ASSERT_TRUE(result.ok());
    log_n.push_back(std::log(static_cast<double>(n)));
    log_iter.push_back(
        std::log(static_cast<double>(result->stats.positions_examined)));
  }
  // Fit slope.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < log_n.size(); ++i) {
    sx += log_n[i];
    sy += log_iter[i];
    sxx += log_n[i] * log_n[i];
    sxy += log_n[i] * log_iter[i];
  }
  double m = static_cast<double>(log_n.size());
  double slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
  EXPECT_LT(slope, 1.8);
  EXPECT_GT(slope, 1.1);
}

}  // namespace
}  // namespace core
}  // namespace sigsub
