#include <vector>

#include "core/agmm.h"
#include "core/arlm.h"
#include "core/mss.h"
#include "core/naive.h"
#include "gtest/gtest.h"
#include "seq/generators.h"
#include "seq/rng.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

TEST(ArlmTest, CandidateBoundariesAreRunBoundaries) {
  seq::Sequence s = seq::Sequence::FromSymbols(2, {0, 0, 1, 1, 1, 0}).value();
  std::vector<int64_t> boundaries = ArlmCandidateBoundaries(s);
  EXPECT_EQ(boundaries, (std::vector<int64_t>{0, 2, 5, 6}));
}

TEST(ArlmTest, SingleRunStringHasTwoBoundaries) {
  seq::Sequence s =
      seq::Sequence::FromSymbols(2, std::vector<uint8_t>(10, 1)).value();
  EXPECT_EQ(ArlmCandidateBoundaries(s), (std::vector<int64_t>{0, 10}));
}

TEST(ArlmTest, NeverExceedsTrueMss) {
  seq::Rng rng(41);
  for (int k : {2, 3, 5}) {
    for (int trial = 0; trial < 5; ++trial) {
      seq::Sequence s = seq::GenerateNull(k, 300, rng);
      auto model = seq::MultinomialModel::Uniform(k);
      auto arlm = FindMssArlm(s, model);
      auto exact = NaiveFindMss(s, model);
      ASSERT_TRUE(arlm.ok());
      ASSERT_TRUE(exact.ok());
      EXPECT_LE(arlm->best.chi_square,
                exact->best.chi_square + 1e-9 * (1 + exact->best.chi_square))
          << "k=" << k << " trial=" << trial;
    }
  }
}

TEST(ArlmTest, NearOptimalOnNullBinaryStrings) {
  // The paper observed ARLM matching the exact optimum on their synthetic
  // binary data; with fixed seeds our reconstruction recovers at least 90%
  // of the optimum value on every trial (usually 100%).
  seq::Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    seq::Sequence s = seq::GenerateNull(2, 1000, rng);
    auto model = seq::MultinomialModel::Uniform(2);
    auto arlm = FindMssArlm(s, model);
    auto exact = NaiveFindMss(s, model);
    ASSERT_TRUE(arlm.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_GE(arlm->best.chi_square, 0.9 * exact->best.chi_square)
        << "trial=" << trial;
  }
}

TEST(ArlmTest, ExactOnRunStructuredString) {
  // When the anomaly is a pure run, its boundaries are run boundaries and
  // ARLM must find the exact optimum.
  seq::Rng rng(43);
  auto s = seq::GenerateRegimes(
      2, {{200, {0.5, 0.5}}, {60, {0.999, 0.001}}, {200, {0.5, 0.5}}}, rng);
  ASSERT_TRUE(s.ok());
  auto model = seq::MultinomialModel::Uniform(2);
  auto arlm = FindMssArlm(s.value(), model);
  auto exact = NaiveFindMss(s.value(), model);
  ASSERT_TRUE(arlm.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_X2_EQ(arlm->best.chi_square, exact->best.chi_square);
}

TEST(ArlmTest, ExaminesFewerPairsThanTrivial) {
  seq::Rng rng(44);
  seq::Sequence s = seq::GenerateNull(2, 2000, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto arlm = FindMssArlm(s, model);
  ASSERT_TRUE(arlm.ok());
  // Random binary: ~n/2 runs → ~n²/8 pairs vs n²/2 trivial.
  EXPECT_LT(arlm->stats.positions_examined, TrivialScanPositions(2000) / 2);
}

TEST(AgmmTest, NeverExceedsTrueMss) {
  seq::Rng rng(45);
  for (int k : {2, 3, 5}) {
    for (int trial = 0; trial < 5; ++trial) {
      seq::Sequence s = seq::GenerateNull(k, 400, rng);
      auto model = seq::MultinomialModel::Uniform(k);
      auto agmm = FindMssAgmm(s, model);
      auto exact = NaiveFindMss(s, model);
      ASSERT_TRUE(agmm.ok());
      ASSERT_TRUE(exact.ok());
      EXPECT_LE(agmm->best.chi_square,
                exact->best.chi_square + 1e-9 * (1 + exact->best.chi_square))
          << "k=" << k << " trial=" << trial;
    }
  }
}

TEST(AgmmTest, FindsSingleDominantExcursion) {
  // A unimodal deviation walk: slight 1-drift outside the window, strong
  // 0-burst inside. The global minimum/maximum of W_0 then bracket the
  // planted window tightly and AGMM lands near the optimum. (With a
  // zero-drift background the walk keeps wandering after the burst and
  // AGMM's bracket widens — the documented failure mode tested below.)
  seq::Rng rng(46);
  auto s = seq::GenerateRegimes(
      2, {{500, {0.45, 0.55}}, {200, {0.95, 0.05}}, {500, {0.45, 0.55}}},
      rng);
  ASSERT_TRUE(s.ok());
  auto model = seq::MultinomialModel::Uniform(2);
  auto agmm = FindMssAgmm(s.value(), model);
  auto exact = NaiveFindMss(s.value(), model);
  ASSERT_TRUE(agmm.ok());
  ASSERT_TRUE(exact.ok());
  // Even in this friendly case the bracket includes some drift on both
  // sides of the burst, so AGMM recovers most but not all of the optimal
  // X² — comfortably better than the adversarial case below.
  EXPECT_GE(agmm->best.chi_square, 0.65 * exact->best.chi_square);
}

TEST(AgmmTest, CanMissInteriorAnomalyWithTwoExcursions) {
  // Two opposite-signed excursions: the walk's global max/min bracket the
  // whole middle, and AGMM's candidate set misses the sharp interior
  // anomaly — the paper's documented failure mode (Tables 1/4/6). The
  // construction: a strong 1-burst followed by a strong 0-burst.
  seq::Rng rng(47);
  auto s = seq::GenerateRegimes(2,
                                {{400, {0.5, 0.5}},
                                 {80, {0.05, 0.95}},
                                 {400, {0.5, 0.5}},
                                 {80, {0.95, 0.05}},
                                 {400, {0.5, 0.5}}},
                                rng);
  ASSERT_TRUE(s.ok());
  auto model = seq::MultinomialModel::Uniform(2);
  auto agmm = FindMssAgmm(s.value(), model);
  auto exact = NaiveFindMss(s.value(), model);
  ASSERT_TRUE(agmm.ok());
  ASSERT_TRUE(exact.ok());
  // AGMM stays a valid lower bound but visibly below the optimum here.
  EXPECT_LT(agmm->best.chi_square, 0.95 * exact->best.chi_square);
}

TEST(AgmmTest, LinearWorkFootprint) {
  seq::Rng rng(48);
  seq::Sequence s = seq::GenerateNull(2, 10000, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto agmm = FindMssAgmm(s, model);
  ASSERT_TRUE(agmm.ok());
  // O(k·n) walk evaluations plus a handful of candidates.
  EXPECT_LT(agmm->stats.positions_examined, 2 * 2 * 10000 + 100);
}

TEST(BaselineOrderingTest, QualityOrderAgmmLeArlmLeExact) {
  // On random binary strings the documented ordering holds with fixed
  // seeds: AGMM <= ARLM <= exact.
  seq::Rng rng(49);
  for (int trial = 0; trial < 8; ++trial) {
    seq::Sequence s = seq::GenerateNull(2, 800, rng);
    auto model = seq::MultinomialModel::Uniform(2);
    auto agmm = FindMssAgmm(s, model);
    auto arlm = FindMssArlm(s, model);
    auto exact = NaiveFindMss(s, model);
    ASSERT_TRUE(agmm.ok());
    ASSERT_TRUE(arlm.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(agmm->best.chi_square, arlm->best.chi_square + 1e-9)
        << "trial=" << trial;
    EXPECT_LE(arlm->best.chi_square, exact->best.chi_square + 1e-9)
        << "trial=" << trial;
  }
}

}  // namespace
}  // namespace core
}  // namespace sigsub
