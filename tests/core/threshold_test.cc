#include "core/threshold.h"

#include <algorithm>
#include <tuple>

#include "core/mss.h"
#include "core/naive.h"
#include "gtest/gtest.h"
#include "seq/generators.h"
#include "seq/rng.h"
#include "stats/count_statistics.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

std::vector<Substring> Sorted(std::vector<Substring> subs) {
  std::sort(subs.begin(), subs.end(),
            [](const Substring& a, const Substring& b) {
              return std::tie(a.start, a.end) < std::tie(b.start, b.end);
            });
  return subs;
}

TEST(FindAboveThresholdTest, ValidatesInput) {
  seq::Rng rng(1);
  seq::Sequence s = seq::GenerateNull(2, 10, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  EXPECT_TRUE(FindAboveThreshold(s, model, -1.0).status().IsInvalidArgument());
  seq::Sequence empty(2);
  EXPECT_TRUE(
      FindAboveThreshold(empty, model, 1.0).status().IsInvalidArgument());
}

TEST(FindAboveThresholdTest, HugeThresholdFindsNothing) {
  seq::Rng rng(2);
  seq::Sequence s = seq::GenerateNull(2, 300, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto result = FindAboveThreshold(s, model, 1e9);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->match_count, 0);
  EXPECT_TRUE(result->matches.empty());
  // And it should be dramatically cheaper than the trivial scan.
  EXPECT_LT(result->stats.positions_examined, TrivialScanPositions(300) / 2);
}

TEST(FindAboveThresholdTest, ZeroThresholdMatchesAllPositiveSubstrings) {
  seq::Rng rng(3);
  seq::Sequence s = seq::GenerateNull(2, 60, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto fast = FindAboveThreshold(s, model, 0.0);
  auto slow = NaiveFindAboveThreshold(s, model, 0.0);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast->match_count, slow->match_count);
  // With alpha0 = 0 nothing can be skipped except exact-zero substrings.
  EXPECT_GT(fast->match_count, 0);
}

TEST(FindAboveThresholdTest, MatchesContainTheMss) {
  seq::Rng rng(4);
  seq::Sequence s = seq::GenerateNull(2, 400, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto mss = FindMss(s, model);
  ASSERT_TRUE(mss.ok());
  double alpha0 = mss->best.chi_square * 0.9;
  auto result = FindAboveThreshold(s, model, alpha0);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->match_count, 0);
  EXPECT_X2_EQ(result->best.chi_square, mss->best.chi_square);
  bool found = false;
  for (const auto& match : result->matches) {
    EXPECT_GT(match.chi_square, alpha0);
    if (match.start == mss->best.start && match.end == mss->best.end) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(FindAboveThresholdTest, MaxMatchesCapsListButNotCount) {
  seq::Rng rng(5);
  seq::Sequence s = seq::GenerateNull(2, 200, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  ThresholdOptions options;
  options.max_matches = 10;
  auto capped = FindAboveThreshold(s, model, 1.0, options);
  auto full = FindAboveThreshold(s, model, 1.0);
  ASSERT_TRUE(capped.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(capped->match_count, full->match_count);
  EXPECT_EQ(static_cast<int64_t>(capped->matches.size()), 10);
  EXPECT_GT(full->match_count, 10);
}

class ThresholdEquivalence
    : public ::testing::TestWithParam<std::tuple<int64_t, int, double>> {};

TEST_P(ThresholdEquivalence, FastMatchesNaiveSetExactly) {
  auto [n, k, alpha0] = GetParam();
  seq::Rng rng(static_cast<uint64_t>(n * 13 + k * 3 +
                                     static_cast<uint64_t>(alpha0 * 10)));
  seq::Sequence s = seq::GenerateNull(k, n, rng);
  auto model = seq::MultinomialModel::Uniform(k);
  auto fast = FindAboveThreshold(s, model, alpha0);
  auto slow = NaiveFindAboveThreshold(s, model, alpha0);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  ASSERT_EQ(fast->match_count, slow->match_count)
      << "n=" << n << " k=" << k << " alpha0=" << alpha0;
  auto f = Sorted(fast->matches);
  auto sl = Sorted(slow->matches);
  ASSERT_EQ(f.size(), sl.size());
  for (size_t i = 0; i < f.size(); ++i) {
    EXPECT_EQ(f[i].start, sl[i].start) << i;
    EXPECT_EQ(f[i].end, sl[i].end) << i;
    EXPECT_X2_EQ(f[i].chi_square, sl[i].chi_square);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThresholdEquivalence,
    ::testing::Combine(::testing::Values<int64_t>(10, 80, 400),
                       ::testing::Values(2, 4),
                       ::testing::Values(0.5, 2.0, 5.0, 10.0, 20.0)),
    [](const ::testing::TestParamInfo<ThresholdEquivalence::ParamType>&
           info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_a" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 10));
    });

TEST(FindAboveThresholdTest, IterationsDropSharplyWithAlpha) {
  // Paper Figure 6's shape: iterations fall steeply as alpha0 passes the
  // typical substring score.
  seq::Rng rng(6);
  seq::Sequence s = seq::GenerateNull(2, 5000, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  int64_t prev = INT64_MAX;
  for (double alpha0 : {1.0, 5.0, 15.0, 40.0}) {
    ThresholdOptions options;
    options.max_matches = 0;  // Count only.
    auto result = FindAboveThreshold(s, model, alpha0, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->stats.positions_examined, prev);
    prev = result->stats.positions_examined;
  }
}

TEST(FindAboveThresholdTest, PValueDrivenThreshold) {
  // End-to-end: choose alpha0 from a significance level and verify all
  // returned substrings are significant at that level.
  seq::Rng rng(7);
  seq::Sequence s = seq::GenerateNull(2, 1000, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  double alpha0 = stats::ChiSquareThresholdForPValue(1e-4, 2);
  auto result = FindAboveThreshold(s, model, alpha0);
  ASSERT_TRUE(result.ok());
  for (const auto& match : result->matches) {
    EXPECT_LT(stats::ChiSquarePValue(match.chi_square, 2), 1e-4);
  }
}

}  // namespace
}  // namespace core
}  // namespace sigsub
