#include "core/length_bounded.h"

#include <tuple>

#include "core/min_length.h"
#include "core/mss.h"
#include "gtest/gtest.h"
#include "seq/generators.h"
#include "seq/rng.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

TEST(LengthBoundedTest, ValidatesInput) {
  seq::Rng rng(1);
  seq::Sequence s = seq::GenerateNull(2, 20, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  EXPECT_TRUE(
      FindMssLengthBounded(s, model, 0, 5).status().IsInvalidArgument());
  EXPECT_TRUE(
      FindMssLengthBounded(s, model, 5, 4).status().IsInvalidArgument());
  EXPECT_TRUE(
      FindMssLengthBounded(s, model, 21, 25).status().IsInvalidArgument());
  seq::Sequence empty(2);
  EXPECT_TRUE(
      FindMssLengthBounded(empty, model, 1, 2).status().IsInvalidArgument());
}

TEST(LengthBoundedTest, FullRangeEqualsPlainMss) {
  seq::Rng rng(2);
  seq::Sequence s = seq::GenerateNull(2, 700, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto bounded = FindMssLengthBounded(s, model, 1, 700);
  auto plain = FindMss(s, model);
  ASSERT_TRUE(bounded.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_X2_EQ(bounded->best.chi_square, plain->best.chi_square);
}

TEST(LengthBoundedTest, MinOnlyEqualsMinLengthVariant) {
  seq::Rng rng(3);
  seq::Sequence s = seq::GenerateNull(3, 400, rng);
  auto model = seq::MultinomialModel::Uniform(3);
  for (int64_t min_length : {5, 40}) {
    auto bounded = FindMssLengthBounded(s, model, min_length, 400);
    auto reference = FindMssMinLength(s, model, min_length);
    ASSERT_TRUE(bounded.ok());
    ASSERT_TRUE(reference.ok());
    EXPECT_X2_EQ(bounded->best.chi_square, reference->best.chi_square);
  }
}

TEST(LengthBoundedTest, ResultRespectsBothBounds) {
  seq::Rng rng(4);
  seq::Sequence s = seq::GenerateNull(2, 600, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  for (auto [lo, hi] : {std::pair<int64_t, int64_t>{2, 9},
                        {10, 50},
                        {100, 120},
                        {599, 600}}) {
    auto result = FindMssLengthBounded(s, model, lo, hi);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->best.length(), lo);
    EXPECT_LE(result->best.length(), hi);
  }
}

class LengthBoundedEquivalence
    : public ::testing::TestWithParam<
          std::tuple<int64_t, int64_t, int64_t>> {};

TEST_P(LengthBoundedEquivalence, FastMatchesNaive) {
  auto [n, min_length, max_length] = GetParam();
  if (min_length > n || max_length < min_length) GTEST_SKIP();
  seq::Rng rng(static_cast<uint64_t>(n * 37 + min_length * 5 + max_length));
  for (int k : {2, 3}) {
    seq::Sequence s = seq::GenerateNull(k, n, rng);
    auto model = seq::MultinomialModel::Uniform(k);
    auto fast = FindMssLengthBounded(s, model, min_length, max_length);
    auto slow = NaiveFindMssLengthBounded(s, model, min_length, max_length);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_X2_EQ(fast->best.chi_square, slow->best.chi_square)
        << "n=" << n << " k=" << k << " [" << min_length << ", "
        << max_length << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LengthBoundedEquivalence,
    ::testing::Combine(::testing::Values<int64_t>(16, 120, 500),
                       ::testing::Values<int64_t>(1, 3, 20),
                       ::testing::Values<int64_t>(4, 30, 200, 500)),
    [](const ::testing::TestParamInfo<LengthBoundedEquivalence::ParamType>&
           info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_lo" +
             std::to_string(std::get<1>(info.param)) + "_hi" +
             std::to_string(std::get<2>(info.param));
    });

TEST(LengthBoundedTest, WindowCapLimitsWork) {
  // With a small window cap the scan cost is O(n·w)-bounded even without
  // skips; verify examined positions stay below that bound.
  seq::Rng rng(5);
  seq::Sequence s = seq::GenerateNull(2, 5000, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto result = FindMssLengthBounded(s, model, 1, 50);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->stats.positions_examined, 5000 * 50);
}

TEST(LengthBoundedTest, TightWindowFindsLocalBurst) {
  // A short planted burst is the best substring at window scale even when
  // a longer, milder regime would dominate unconstrained.
  seq::Rng rng(6);
  auto s = seq::GenerateRegimes(2,
                                {{1000, {0.5, 0.5}},
                                 {30, {0.02, 0.98}},     // Sharp burst.
                                 {1000, {0.5, 0.5}},
                                 {800, {0.38, 0.62}},    // Long mild regime.
                                 {1000, {0.5, 0.5}}},
                                rng);
  ASSERT_TRUE(s.ok());
  auto model = seq::MultinomialModel::Uniform(2);
  auto windowed = FindMssLengthBounded(s.value(), model, 1, 60);
  ASSERT_TRUE(windowed.ok());
  // The windowed MSS overlaps the sharp burst at [1000, 1030).
  EXPECT_LT(windowed->best.start, 1030);
  EXPECT_GT(windowed->best.end, 1000);
}

}  // namespace
}  // namespace core
}  // namespace sigsub
