#include "core/markov_scan.h"

#include <vector>

#include "core/mss.h"
#include "gtest/gtest.h"
#include "seq/generators.h"
#include "seq/rng.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

// Reference O(k²)-per-substring evaluation used to validate the O(1)
// incremental update.
double ReferenceMarkovX2(const seq::Sequence& s, const seq::MarkovModel& m,
                         int64_t start, int64_t end) {
  const int k = m.alphabet_size();
  std::vector<int64_t> pairs(static_cast<size_t>(k) * k, 0);
  for (int64_t i = start + 1; i < end; ++i) {
    ++pairs[s[i - 1] * k + s[i]];
  }
  auto ctx = MarkovChiSquare::Make(m).value();
  return ctx.Evaluate(pairs);
}

TEST(MarkovChiSquareTest, MakeRejectsZeroTransitions) {
  auto model =
      seq::MarkovModel::Make(2, {1.0 - 1e-12, 1e-12, 0.5, 0.5}, {0.5, 0.5});
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(MarkovChiSquare::Make(model.value()).ok());
}

TEST(MarkovChiSquareTest, PerfectTransitionCountsScoreZero) {
  // Counts exactly proportional to T within each row give X² = 0.
  auto model = seq::MarkovModel::BiasedBinary(0.8);
  auto ctx = MarkovChiSquare::Make(model).value();
  // Row 0: 80 stays, 20 switches; row 1: 40 stays, 10 switches.
  std::vector<int64_t> pairs{80, 20, 10, 40};
  EXPECT_NEAR(ctx.Evaluate(pairs), 0.0, 1e-10);
}

TEST(MarkovChiSquareTest, HandComputedValue) {
  // Uniform binary transitions (p_same = 0.5); observed row 0: {6, 2},
  // row 1: {1, 1}. Row 0: E = 4 each -> (2²+2²)/4 = 2. Row 1: 0.
  auto model = seq::MarkovModel::BiasedBinary(0.5);
  auto ctx = MarkovChiSquare::Make(model).value();
  std::vector<int64_t> pairs{6, 2, 1, 1};
  EXPECT_NEAR(ctx.Evaluate(pairs), 2.0, 1e-12);
}

TEST(MarkovChiSquareTest, EmptyCountsScoreZero) {
  auto ctx = MarkovChiSquare::Make(seq::MarkovModel::BiasedBinary(0.5)).value();
  std::vector<int64_t> pairs{0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(ctx.Evaluate(pairs), 0.0);
}

TEST(MarkovIncrementalTest, TracksReferenceEvaluation) {
  seq::Rng rng(71);
  for (int k : {2, 3}) {
    seq::MarkovModel model = seq::MarkovModel::PaperFamily(k);
    seq::Sequence s = seq::GenerateMarkov(model, 300, rng);
    auto ctx = MarkovChiSquare::Make(model).value();
    for (int64_t start : {0, 37, 150}) {
      MarkovChiSquare::Incremental inc(ctx);
      inc.Reset();
      for (int64_t end = start + 1; end <= s.size(); ++end) {
        inc.Extend(s[end - 1]);
        if ((end - start) % 17 != 0) continue;  // Spot-check cadence.
        double reference = ReferenceMarkovX2(s, model, start, end);
        ASSERT_NEAR(inc.chi_square(), reference,
                    1e-7 * (1.0 + reference))
            << "k=" << k << " start=" << start << " end=" << end;
      }
    }
  }
}

TEST(FindMssMarkovTest, ValidatesInput) {
  auto model = seq::MarkovModel::BiasedBinary(0.6);
  seq::Sequence tiny = seq::Sequence::FromSymbols(2, {1}).value();
  EXPECT_TRUE(FindMssMarkov(tiny, model).status().IsInvalidArgument());
  seq::Sequence s = seq::Sequence::FromSymbols(2, {1, 0, 1, 0}).value();
  EXPECT_TRUE(FindMssMarkov(s, model, 0).status().IsInvalidArgument());
  EXPECT_TRUE(FindMssMarkov(s, model, 4).status().IsInvalidArgument());
  seq::Sequence wrong_k = seq::Sequence::FromSymbols(3, {1, 2, 0}).value();
  EXPECT_TRUE(FindMssMarkov(wrong_k, model).status().IsInvalidArgument());
}

TEST(FindMssMarkovTest, MatchesBruteForceOnSmallStrings) {
  seq::Rng rng(72);
  auto model = seq::MarkovModel::BiasedBinary(0.7);
  for (int trial = 0; trial < 10; ++trial) {
    seq::Sequence s = seq::GenerateMarkov(model, 40, rng);
    auto fast = FindMssMarkov(s, model);
    ASSERT_TRUE(fast.ok());
    // Brute force over all substrings with >= 1 transition.
    double best = -1.0;
    for (int64_t i = 0; i < s.size(); ++i) {
      for (int64_t j = i + 2; j <= s.size(); ++j) {
        best = std::max(best, ReferenceMarkovX2(s, model, i, j));
      }
    }
    EXPECT_NEAR(fast->best.chi_square, best, 1e-7 * (1.0 + best))
        << "trial=" << trial;
  }
}

TEST(FindMssMarkovTest, DetectsTransitionAnomalyInvisibleToMultinomial) {
  // Planted stretch where the chain flips symbols almost deterministically:
  // marginals stay 50/50 (invisible to the multinomial X²), transitions
  // scream. The Markov MSS must land on the planted window and score far
  // above the multinomial MSS of the same string.
  seq::Rng rng(73);
  seq::Sequence s(2);
  {
    seq::Sequence a = seq::GenerateBiasedBinary(0.5, 2000, rng);
    seq::Sequence b = seq::GenerateBiasedBinary(0.02, 300, rng);  // Flips.
    seq::Sequence c = seq::GenerateBiasedBinary(0.5, 2000, rng);
    for (int64_t i = 0; i < a.size(); ++i) s.Append(a[i]);
    for (int64_t i = 0; i < b.size(); ++i) s.Append(b[i]);
    for (int64_t i = 0; i < c.size(); ++i) s.Append(c[i]);
  }
  auto markov_null = seq::MarkovModel::BiasedBinary(0.5);
  auto markov_mss = FindMssMarkov(s, markov_null, /*min_transitions=*/16);
  ASSERT_TRUE(markov_mss.ok());
  // Overlaps the planted window [2000, 2300).
  int64_t overlap = std::min<int64_t>(markov_mss->best.end, 2300) -
                    std::max<int64_t>(markov_mss->best.start, 2000);
  EXPECT_GT(overlap, 250);
  EXPECT_GT(markov_mss->best.chi_square, 200.0);

  // The multinomial MSS sees roughly balanced counts everywhere.
  auto flat = FindMss(s, seq::MultinomialModel::Uniform(2));
  ASSERT_TRUE(flat.ok());
  EXPECT_LT(flat->best.chi_square, markov_mss->best.chi_square / 3.0);
}

TEST(FindMssMarkovTest, NullMarkovStringScoresModerately) {
  // On a string genuinely drawn from the null Markov model, X²_M max stays
  // within the extreme-value range (no false blowup).
  seq::Rng rng(74);
  auto model = seq::MarkovModel::BiasedBinary(0.7);
  seq::Sequence s = seq::GenerateMarkov(model, 4000, rng);
  auto mss = FindMssMarkov(s, model, /*min_transitions=*/8);
  ASSERT_TRUE(mss.ok());
  EXPECT_LT(mss->best.chi_square, 60.0);
  EXPECT_GT(mss->best.chi_square, 2.0);
}

TEST(FindMssMarkovTest, MinTransitionsRespected) {
  seq::Rng rng(75);
  auto model = seq::MarkovModel::BiasedBinary(0.5);
  seq::Sequence s = seq::GenerateMarkov(model, 500, rng);
  for (int64_t min_transitions : {1, 5, 50}) {
    auto mss = FindMssMarkov(s, model, min_transitions);
    ASSERT_TRUE(mss.ok());
    EXPECT_GE(mss->best.length() - 1, min_transitions);
  }
}

}  // namespace
}  // namespace core
}  // namespace sigsub
