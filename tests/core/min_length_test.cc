#include "core/min_length.h"

#include <tuple>

#include "core/mss.h"
#include "core/naive.h"
#include "gtest/gtest.h"
#include "seq/generators.h"
#include "seq/rng.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

TEST(FindMssMinLengthTest, ValidatesInput) {
  seq::Rng rng(1);
  seq::Sequence s = seq::GenerateNull(2, 20, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  EXPECT_TRUE(FindMssMinLength(s, model, 0).status().IsInvalidArgument());
  EXPECT_TRUE(FindMssMinLength(s, model, 21).status().IsInvalidArgument());
  seq::Sequence empty(2);
  EXPECT_TRUE(FindMssMinLength(empty, model, 1).status().IsInvalidArgument());
}

TEST(FindMssMinLengthTest, MinLengthOneEqualsMss) {
  seq::Rng rng(2);
  seq::Sequence s = seq::GenerateNull(2, 600, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto constrained = FindMssMinLength(s, model, 1);
  auto mss = FindMss(s, model);
  ASSERT_TRUE(constrained.ok());
  ASSERT_TRUE(mss.ok());
  EXPECT_X2_EQ(constrained->best.chi_square, mss->best.chi_square);
}

TEST(FindMssMinLengthTest, FullLengthReturnsWholeString) {
  seq::Rng rng(3);
  seq::Sequence s = seq::GenerateNull(2, 100, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto result = FindMssMinLength(s, model, 100);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best.start, 0);
  EXPECT_EQ(result->best.end, 100);
}

TEST(FindMssMinLengthTest, ResultRespectsConstraint) {
  seq::Rng rng(4);
  seq::Sequence s = seq::GenerateNull(3, 500, rng);
  auto model = seq::MultinomialModel::Uniform(3);
  for (int64_t min_length : {2, 10, 50, 250}) {
    auto result = FindMssMinLength(s, model, min_length);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->best.length(), min_length);
  }
}

TEST(FindMssMinLengthTest, ValueIsMonotoneNonIncreasingInMinLength) {
  // Raising the length floor can only shrink the candidate set.
  seq::Rng rng(5);
  seq::Sequence s = seq::GenerateNull(2, 800, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  double prev = 1e300;
  for (int64_t min_length : {1, 5, 25, 125, 600}) {
    auto result = FindMssMinLength(s, model, min_length);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->best.chi_square, prev + 1e-9);
    prev = result->best.chi_square;
  }
}

class MinLengthEquivalence
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(MinLengthEquivalence, FastMatchesNaive) {
  auto [n, min_length] = GetParam();
  if (min_length > n) GTEST_SKIP();
  seq::Rng rng(static_cast<uint64_t>(n * 7 + min_length));
  for (int k : {2, 3}) {
    seq::Sequence s = seq::GenerateNull(k, n, rng);
    auto model = seq::MultinomialModel::Uniform(k);
    auto fast = FindMssMinLength(s, model, min_length);
    auto slow = NaiveFindMssMinLength(s, model, min_length);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_X2_EQ(fast->best.chi_square, slow->best.chi_square)
        << "n=" << n << " k=" << k << " min_length=" << min_length;
    EXPECT_GE(fast->best.length(), min_length);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinLengthEquivalence,
    ::testing::Combine(::testing::Values<int64_t>(8, 64, 300),
                       ::testing::Values<int64_t>(1, 2, 7, 32, 150, 300)),
    [](const ::testing::TestParamInfo<MinLengthEquivalence::ParamType>&
           info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_g" +
             std::to_string(std::get<1>(info.param));
    });

TEST(FindMssMinLengthTest, LargerFloorExaminesFewerPositions) {
  // Paper Figure 7: iterations decrease as Γ₀ grows.
  seq::Rng rng(6);
  seq::Sequence s = seq::GenerateNull(2, 5000, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto small = FindMssMinLength(s, model, 1);
  auto large = FindMssMinLength(s, model, 4000);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LT(large->stats.positions_examined,
            small->stats.positions_examined);
}

}  // namespace
}  // namespace core
}  // namespace sigsub
