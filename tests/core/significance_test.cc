#include "core/significance.h"

#include <cmath>

#include "core/mss.h"
#include "gtest/gtest.h"
#include "seq/alphabet.h"
#include "seq/generators.h"
#include "seq/rng.h"
#include "stats/chi_squared.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

TEST(SubstringPValueTest, MatchesChiSquareSurvival) {
  stats::ChiSquaredDistribution d1(1);
  EXPECT_DOUBLE_EQ(SubstringPValue(16.2, 2), d1.Sf(16.2));
  stats::ChiSquaredDistribution d4(4);
  EXPECT_DOUBLE_EQ(SubstringPValue(7.0, 5), d4.Sf(7.0));
}

TEST(SubstringPValueTest, ZeroStatisticHasPValueOne) {
  EXPECT_DOUBLE_EQ(SubstringPValue(0.0, 2), 1.0);
}

TEST(ScoreSubstringTest, CoinExample) {
  // "1111111111111111111 0": 19 ones and 1 zero under a fair model.
  seq::Alphabet binary = seq::Alphabet::Binary();
  auto s = seq::Sequence::FromString(binary, "11111111111111111110");
  ASSERT_TRUE(s.ok());
  auto model = seq::MultinomialModel::Uniform(2);
  auto scored = ScoreSubstring(s.value(), model, 0, 20);
  ASSERT_TRUE(scored.ok());
  EXPECT_NEAR(scored->substring.chi_square, 16.2, 1e-10);
  EXPECT_NEAR(scored->p_value, 5.7e-5, 2e-5);
  EXPECT_GT(scored->g2, 0.0);
}

TEST(ScoreSubstringTest, ValidatesBounds) {
  seq::Rng rng(1);
  seq::Sequence s = seq::GenerateNull(2, 10, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  EXPECT_TRUE(ScoreSubstring(s, model, -1, 5).status().IsOutOfRange());
  EXPECT_TRUE(ScoreSubstring(s, model, 5, 5).status().IsOutOfRange());
  EXPECT_TRUE(ScoreSubstring(s, model, 0, 11).status().IsOutOfRange());
  auto wrong_model = seq::MultinomialModel::Uniform(3);
  EXPECT_TRUE(
      ScoreSubstring(s, wrong_model, 0, 5).status().IsInvalidArgument());
}

TEST(ScoreResultTest, AnnotatesMss) {
  seq::Rng rng(2);
  seq::Sequence s = seq::GenerateNull(2, 500, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto mss = FindMss(s, model);
  ASSERT_TRUE(mss.ok());
  auto scored = ScoreResult(s, model, mss.value());
  ASSERT_TRUE(scored.ok());
  EXPECT_X2_EQ(scored->substring.chi_square, mss->best.chi_square);
  EXPECT_GT(scored->p_value, 0.0);
  EXPECT_LT(scored->p_value, 1.0);
}

TEST(ScoreSubstringTest, G2AndX2AgreeForMildDeviations) {
  // Large balanced-ish substring: the two statistics nearly coincide.
  std::vector<uint8_t> symbols;
  for (int i = 0; i < 5100; ++i) symbols.push_back(1);
  for (int i = 0; i < 4900; ++i) symbols.push_back(0);
  seq::Sequence s = seq::Sequence::FromSymbols(2, symbols).value();
  auto model = seq::MultinomialModel::Uniform(2);
  auto scored = ScoreSubstring(s, model, 0, s.size());
  ASSERT_TRUE(scored.ok());
  EXPECT_NEAR(scored->g2, scored->substring.chi_square,
              0.01 * scored->substring.chi_square);
}

TEST(ScoreSubstringTest, PValueDecreasesWithDeviation) {
  auto model = seq::MultinomialModel::Uniform(2);
  double prev = 1.1;
  for (int ones = 10; ones <= 18; ones += 2) {
    std::vector<uint8_t> symbols(20, 0);
    for (int i = 0; i < ones; ++i) symbols[i] = 1;
    seq::Sequence s = seq::Sequence::FromSymbols(2, symbols).value();
    auto scored = ScoreSubstring(s, model, 0, 20);
    ASSERT_TRUE(scored.ok());
    EXPECT_LT(scored->p_value, prev) << ones;
    prev = scored->p_value;
  }
}

}  // namespace
}  // namespace core
}  // namespace sigsub
