#include "core/chain_cover.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "gtest/gtest.h"
#include "seq/generators.h"
#include "seq/rng.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

// Enumerates all count-vector extensions (compositions of `extra` over k
// characters) of `base`, returning the maximum resulting X². This is the
// exhaustive left-hand side of Theorem 1.
double MaxExtensionChiSquare(const ChiSquareContext& ctx,
                             std::vector<int64_t> base, int64_t base_len,
                             int64_t extra) {
  const int k = ctx.alphabet_size();
  std::vector<int64_t> add(k, 0);
  double best = -1.0;
  // Recursive composition enumeration.
  std::function<void(int, int64_t)> rec = [&](int index, int64_t remaining) {
    if (index == k - 1) {
      add[index] = remaining;
      std::vector<int64_t> counts(base);
      for (int c = 0; c < k; ++c) counts[c] += add[c];
      best = std::max(best, ctx.Evaluate(counts, base_len + extra));
      return;
    }
    for (int64_t y = 0; y <= remaining; ++y) {
      add[index] = y;
      rec(index + 1, remaining - y);
    }
  };
  rec(0, extra);
  return best;
}

TEST(CoverChiSquareTest, MatchesDirectEvaluationOfPaddedCounts) {
  // X²_λ(c, x) computed by the closed form must equal evaluating the
  // padded count vector directly (paper Eq. 19 vs Eq. 5).
  ChiSquareContext ctx(seq::MultinomialModel::Make({0.2, 0.3, 0.5}).value());
  std::vector<int64_t> counts{4, 1, 3};
  int64_t l = 8;
  double x2 = ctx.Evaluate(counts, l);
  for (int c = 0; c < 3; ++c) {
    for (int64_t x : {1, 2, 5, 17}) {
      std::vector<int64_t> padded(counts);
      padded[c] += x;
      double direct = ctx.Evaluate(padded, l + x);
      double closed = CoverChiSquare(x2, l, counts[c], ctx.probs()[c],
                                     static_cast<double>(x));
      EXPECT_NEAR(closed, direct, 1e-9 * (1.0 + std::fabs(direct)))
          << "c=" << c << " x=" << x;
    }
  }
}

TEST(CoverChiSquareTest, ZeroExtensionIsIdentity) {
  ChiSquareContext ctx(seq::MultinomialModel::Uniform(2));
  std::vector<int64_t> counts{6, 2};
  double x2 = ctx.Evaluate(counts, 8);
  EXPECT_NEAR(CoverChiSquare(x2, 8, counts[0], 0.5, 0.0), x2, 1e-12);
}

TEST(Lemma2Test, AppendingArgmaxCharacterIncreasesChiSquare) {
  // Lemma 2: appending the character maximizing Y_j/p_j strictly increases
  // X². Checked over random count vectors.
  seq::Rng rng(11);
  for (int iter = 0; iter < 200; ++iter) {
    int k = 2 + static_cast<int>(rng.NextBounded(4));
    seq::MultinomialModel model =
        (iter % 2 == 0) ? seq::MultinomialModel::Uniform(k)
                        : seq::MultinomialModel::Harmonic(k);
    ChiSquareContext ctx(model);
    std::vector<int64_t> counts(k);
    int64_t l = 0;
    for (int c = 0; c < k; ++c) {
      counts[c] = static_cast<int64_t>(rng.NextBounded(20));
      l += counts[c];
    }
    if (l == 0) continue;
    // Pick j = argmax Y_j / p_j.
    int j = 0;
    double best_score = -1.0;
    for (int c = 0; c < k; ++c) {
      double score = static_cast<double>(counts[c]) / model.prob(c);
      if (score > best_score) {
        best_score = score;
        j = c;
      }
    }
    double before = ctx.Evaluate(counts, l);
    ++counts[j];
    double after = ctx.Evaluate(counts, l + 1);
    EXPECT_GT(after, before) << "iter=" << iter;
  }
}

TEST(Theorem1Test, CoverBoundDominatesAllExtensionsExhaustively) {
  // Theorem 1: for every extension length m <= l1, every possible extension
  // is bounded by max_c X²_λ(c, l1). Verified by exhaustive composition
  // enumeration for small k and l1.
  seq::Rng rng(13);
  for (int iter = 0; iter < 60; ++iter) {
    int k = 2 + static_cast<int>(rng.NextBounded(2));  // k in {2,3}.
    seq::MultinomialModel model =
        (iter % 2 == 0) ? seq::MultinomialModel::Uniform(k)
                        : seq::MultinomialModel::Geometric(k);
    ChiSquareContext ctx(model);
    std::vector<int64_t> counts(k);
    int64_t l = 0;
    for (int c = 0; c < k; ++c) {
      counts[c] = 1 + static_cast<int64_t>(rng.NextBounded(8));
      l += counts[c];
    }
    double x2 = ctx.Evaluate(counts, l);
    for (int64_t l1 : {1, 2, 3, 5}) {
      double bound = -1.0;
      for (int c = 0; c < k; ++c) {
        bound = std::max(bound, CoverChiSquare(x2, l, counts[c],
                                               model.prob(c),
                                               static_cast<double>(l1)));
      }
      for (int64_t m = 1; m <= l1; ++m) {
        double worst = MaxExtensionChiSquare(ctx, counts, l, m);
        EXPECT_LE(worst, bound + 1e-9)
            << "iter=" << iter << " l1=" << l1 << " m=" << m;
      }
    }
  }
}

TEST(SkipSolverTest, SkipIsSoundExhaustively) {
  // For random bases, every extension by 1..MaxSafeExtension must stay at
  // or below the budget (checked exhaustively over compositions).
  seq::Rng rng(17);
  for (int iter = 0; iter < 60; ++iter) {
    int k = 2 + static_cast<int>(rng.NextBounded(2));
    seq::MultinomialModel model =
        (iter % 2 == 0) ? seq::MultinomialModel::Uniform(k)
                        : seq::MultinomialModel::Harmonic(k);
    ChiSquareContext ctx(model);
    SkipSolver solver(ctx);
    std::vector<int64_t> counts(k);
    int64_t l = 0;
    for (int c = 0; c < k; ++c) {
      counts[c] = static_cast<int64_t>(rng.NextBounded(6));
      l += counts[c];
    }
    if (l == 0) {
      counts[0] = 1;
      l = 1;
    }
    double x2 = ctx.Evaluate(counts, l);
    double budget = x2 + static_cast<double>(rng.NextBounded(12));
    int64_t m = solver.MaxSafeExtension(counts, l, x2, budget);
    ASSERT_GE(m, 0);
    int64_t check_up_to = std::min<int64_t>(m, 7);  // Exhaustive cost cap.
    for (int64_t ext = 1; ext <= check_up_to; ++ext) {
      double worst = MaxExtensionChiSquare(ctx, counts, l, ext);
      EXPECT_LE(worst, budget + 1e-9)
          << "iter=" << iter << " ext=" << ext << " m=" << m;
    }
  }
}

TEST(SkipSolverTest, ZeroWhenOverBudget) {
  ChiSquareContext ctx(seq::MultinomialModel::Uniform(2));
  SkipSolver solver(ctx);
  std::vector<int64_t> counts{9, 1};
  double x2 = ctx.Evaluate(counts, 10);
  EXPECT_EQ(solver.MaxSafeExtension(counts, 10, x2, x2 - 1.0), 0);
}

TEST(SkipSolverTest, GrowsWithBudget) {
  ChiSquareContext ctx(seq::MultinomialModel::Uniform(2));
  SkipSolver solver(ctx);
  std::vector<int64_t> counts{5, 5};
  double x2 = ctx.Evaluate(counts, 10);  // 0: perfectly balanced.
  int64_t prev = -1;
  for (double budget : {1.0, 4.0, 16.0, 64.0}) {
    int64_t m = solver.MaxSafeExtension(counts, 10, x2, budget);
    EXPECT_GT(m, prev);
    prev = m;
  }
}

TEST(SkipSolverTest, SkipScalesLikeSqrtLForNullCounts) {
  // Lemma 5's intuition: for balanced counts and budget ~ ln l, the skip
  // is Θ(sqrt(l · ln l)); check the sqrt scaling across two decades.
  ChiSquareContext ctx(seq::MultinomialModel::Uniform(2));
  SkipSolver solver(ctx);
  auto skip_at = [&](int64_t l) {
    std::vector<int64_t> counts{l / 2, l / 2};
    double x2 = ctx.Evaluate(counts, l);
    return static_cast<double>(
        solver.MaxSafeExtension(counts, l, x2, std::log(l)));
  };
  double s100 = skip_at(100);
  double s10000 = skip_at(10000);
  // sqrt scaling with the log factor: ratio should be ~10·sqrt(ln10k/ln100).
  EXPECT_GT(s10000 / s100, 8.0);
  EXPECT_LT(s10000 / s100, 25.0);
}

TEST(PaperSingleCharacterSkipTest, NeverExceedsExactSolver) {
  // The paper's one-character rule with x≈0 must be no more aggressive
  // than the exact min-over-characters skip on uniform models (where the
  // argmax is x-independent).
  seq::Rng rng(19);
  ChiSquareContext ctx(seq::MultinomialModel::Uniform(2));
  SkipSolver solver(ctx);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<int64_t> counts{
        static_cast<int64_t>(rng.NextBounded(50)),
        static_cast<int64_t>(rng.NextBounded(50))};
    int64_t l = counts[0] + counts[1];
    if (l == 0) continue;
    double x2 = ctx.Evaluate(counts, l);
    double budget = x2 + 1.0 + static_cast<double>(rng.NextBounded(20));
    int64_t exact = solver.MaxSafeExtension(counts, l, x2, budget);
    int64_t paper = PaperSingleCharacterSkip(ctx, counts, l, x2, budget);
    EXPECT_LE(paper, exact + 1) << "iter=" << iter;
  }
}

}  // namespace
}  // namespace core
}  // namespace sigsub
