#include "core/top_disjoint.h"

#include <algorithm>

#include "core/mss.h"
#include "gtest/gtest.h"
#include "seq/generators.h"
#include "seq/rng.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

TEST(TopDisjointTest, ValidatesInput) {
  seq::Rng rng(1);
  seq::Sequence s = seq::GenerateNull(2, 10, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  TopDisjointOptions bad_t;
  bad_t.t = 0;
  EXPECT_TRUE(FindTopDisjoint(s, model, bad_t).status().IsInvalidArgument());
  TopDisjointOptions bad_len;
  bad_len.min_length = 0;
  EXPECT_TRUE(
      FindTopDisjoint(s, model, bad_len).status().IsInvalidArgument());
  seq::Sequence empty(2);
  EXPECT_TRUE(
      FindTopDisjoint(empty, model, {}).status().IsInvalidArgument());
}

TEST(TopDisjointTest, FirstResultIsTheMss) {
  seq::Rng rng(2);
  seq::Sequence s = seq::GenerateNull(2, 600, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  TopDisjointOptions options;
  options.t = 3;
  auto disjoint = FindTopDisjoint(s, model, options);
  auto mss = FindMss(s, model);
  ASSERT_TRUE(disjoint.ok());
  ASSERT_TRUE(mss.ok());
  ASSERT_FALSE(disjoint->empty());
  EXPECT_EQ((*disjoint)[0].start, mss->best.start);
  EXPECT_EQ((*disjoint)[0].end, mss->best.end);
}

TEST(TopDisjointTest, ResultsAreDisjointAndSorted) {
  seq::Rng rng(3);
  seq::Sequence s = seq::GenerateNull(3, 900, rng);
  auto model = seq::MultinomialModel::Uniform(3);
  TopDisjointOptions options;
  options.t = 8;
  auto result = FindTopDisjoint(s, model, options);
  ASSERT_TRUE(result.ok());
  const auto& subs = *result;
  for (size_t i = 1; i < subs.size(); ++i) {
    EXPECT_GE(subs[i - 1].chi_square, subs[i].chi_square) << i;
  }
  for (size_t i = 0; i < subs.size(); ++i) {
    for (size_t j = i + 1; j < subs.size(); ++j) {
      EXPECT_FALSE(Overlaps(subs[i], subs[j]))
          << "overlap between " << i << " and " << j;
    }
  }
}

TEST(TopDisjointTest, RecoversMultiplePlantedRegimes) {
  seq::Rng rng(4);
  auto s = seq::GenerateRegimes(2,
                                {{1000, {0.5, 0.5}},
                                 {150, {0.9, 0.1}},
                                 {1000, {0.5, 0.5}},
                                 {150, {0.1, 0.9}},
                                 {1000, {0.5, 0.5}}},
                                rng);
  ASSERT_TRUE(s.ok());
  auto model = seq::MultinomialModel::Uniform(2);
  TopDisjointOptions options;
  options.t = 2;
  options.min_length = 20;
  auto result = FindTopDisjoint(s.value(), model, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  // Each planted window [1000,1150) and [2150,2300) is hit by one result.
  auto overlap = [](const Substring& sub, int64_t lo, int64_t hi) {
    return std::min(sub.end, hi) - std::max(sub.start, lo);
  };
  int64_t hit_first = 0, hit_second = 0;
  for (const auto& sub : *result) {
    hit_first = std::max(hit_first, overlap(sub, 1000, 1150));
    hit_second = std::max(hit_second, overlap(sub, 2150, 2300));
  }
  EXPECT_GT(hit_first, 100);
  EXPECT_GT(hit_second, 100);
}

TEST(TopDisjointTest, MinChiSquareFilters) {
  seq::Rng rng(5);
  seq::Sequence s = seq::GenerateNull(2, 400, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto mss = FindMss(s, model);
  ASSERT_TRUE(mss.ok());
  TopDisjointOptions options;
  options.t = 10;
  options.min_chi_square = mss->best.chi_square + 1.0;  // Above the max.
  auto result = FindTopDisjoint(s, model, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(TopDisjointTest, MinLengthIsRespected) {
  seq::Rng rng(6);
  seq::Sequence s = seq::GenerateNull(2, 500, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  TopDisjointOptions options;
  options.t = 5;
  options.min_length = 40;
  auto result = FindTopDisjoint(s, model, options);
  ASSERT_TRUE(result.ok());
  for (const auto& sub : *result) {
    EXPECT_GE(sub.length(), 40);
  }
}

TEST(TopDisjointTest, TCapsResultCount) {
  seq::Rng rng(7);
  seq::Sequence s = seq::GenerateNull(2, 300, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  TopDisjointOptions options;
  options.t = 4;
  auto result = FindTopDisjoint(s, model, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->size(), 4u);
}

}  // namespace
}  // namespace core
}  // namespace sigsub
