#include "core/parallel.h"

#include <tuple>

#include "core/mss.h"
#include "gtest/gtest.h"
#include "seq/generators.h"
#include "seq/rng.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

TEST(ParallelMssTest, ValidatesInput) {
  seq::Sequence empty(2);
  auto model = seq::MultinomialModel::Uniform(2);
  EXPECT_TRUE(FindMssParallel(empty, model).status().IsInvalidArgument());
  seq::Sequence s = seq::Sequence::FromSymbols(3, {0, 1, 2}).value();
  EXPECT_TRUE(FindMssParallel(s, model).status().IsInvalidArgument());
}

class ParallelEquivalence
    : public ::testing::TestWithParam<std::tuple<int64_t, int>> {};

TEST_P(ParallelEquivalence, MatchesSequentialValue) {
  auto [n, threads] = GetParam();
  seq::Rng rng(static_cast<uint64_t>(n * 3 + threads));
  for (int k : {2, 4}) {
    seq::Sequence s = seq::GenerateNull(k, n, rng);
    auto model = seq::MultinomialModel::Uniform(k);
    auto parallel = FindMssParallel(s, model, threads);
    auto sequential = FindMss(s, model);
    ASSERT_TRUE(parallel.ok());
    ASSERT_TRUE(sequential.ok());
    EXPECT_X2_EQ(parallel->best.chi_square, sequential->best.chi_square)
        << "n=" << n << " k=" << k << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelEquivalence,
    ::testing::Combine(::testing::Values<int64_t>(1, 2, 7, 100, 2000),
                       ::testing::Values(1, 2, 3, 8)),
    [](const ::testing::TestParamInfo<ParallelEquivalence::ParamType>&
           info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ParallelMssTest, MoreThreadsThanStartPositions) {
  seq::Sequence s = seq::Sequence::FromSymbols(2, {1, 0, 1}).value();
  auto model = seq::MultinomialModel::Uniform(2);
  auto result = FindMssParallel(s, model, 64);
  ASSERT_TRUE(result.ok());
  auto reference = FindMss(s, model);
  ASSERT_TRUE(reference.ok());
  EXPECT_X2_EQ(result->best.chi_square, reference->best.chi_square);
}

TEST(ParallelMssTest, DefaultThreadCountWorks) {
  seq::Rng rng(9);
  seq::Sequence s = seq::GenerateNull(2, 5000, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto parallel = FindMssParallel(s, model, /*num_threads=*/0);
  auto sequential = FindMss(s, model);
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(sequential.ok());
  EXPECT_X2_EQ(parallel->best.chi_square, sequential->best.chi_square);
}

TEST(ParallelMssTest, StatsCoverAllStartPositions) {
  seq::Rng rng(10);
  seq::Sequence s = seq::GenerateNull(2, 1000, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto result = FindMssParallel(s, model, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.start_positions, 1000);
  EXPECT_EQ(result->stats.positions_examined +
                result->stats.positions_skipped,
            TrivialScanPositions(1000));
}

TEST(ParallelMssTest, PlantedAnomalyFoundByEveryThreadCount) {
  seq::Rng rng(11);
  auto s = seq::GenerateRegimes(
      2, {{3000, {0.5, 0.5}}, {200, {0.9, 0.1}}, {3000, {0.5, 0.5}}}, rng);
  ASSERT_TRUE(s.ok());
  auto model = seq::MultinomialModel::Uniform(2);
  for (int threads : {1, 2, 5}) {
    auto result = FindMssParallel(s.value(), model, threads);
    ASSERT_TRUE(result.ok());
    int64_t overlap = std::min<int64_t>(result->best.end, 3200) -
                      std::max<int64_t>(result->best.start, 3000);
    EXPECT_GT(overlap, 150) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace core
}  // namespace sigsub
