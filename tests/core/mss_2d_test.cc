#include "core/mss_2d.h"

#include <tuple>

#include "core/mss.h"
#include "gtest/gtest.h"
#include "seq/grid.h"
#include "seq/rng.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

TEST(FindMss2dTest, ValidatesAlphabet) {
  seq::Rng rng(1);
  seq::Grid grid = seq::Grid::GenerateNull(seq::MultinomialModel::Uniform(2),
                                           4, 4, rng);
  auto wrong = seq::MultinomialModel::Uniform(3);
  EXPECT_TRUE(FindMss2d(grid, wrong).status().IsInvalidArgument());
  EXPECT_TRUE(NaiveFindMss2d(grid, wrong).status().IsInvalidArgument());
}

TEST(FindMss2dTest, SingleCellGrid) {
  auto grid = seq::Grid::Make(2, 1, 1).value();
  auto model = seq::MultinomialModel::Make({0.25, 0.75}).value();
  auto result = FindMss2d(grid, model);  // Cell is symbol 0.
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best.area(), 1);
  EXPECT_NEAR(result->best.chi_square, 3.0, 1e-12);
}

class Mss2dEquivalence
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int>> {};

TEST_P(Mss2dEquivalence, FastMatchesNaive) {
  auto [rows, cols, k] = GetParam();
  seq::Rng rng(static_cast<uint64_t>(rows * 131 + cols * 7 + k));
  for (int trial = 0; trial < 3; ++trial) {
    auto model = seq::MultinomialModel::Uniform(k);
    seq::Grid grid = seq::Grid::GenerateNull(model, rows, cols, rng);
    auto fast = FindMss2d(grid, model);
    auto slow = NaiveFindMss2d(grid, model);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_NEAR(fast->best.chi_square, slow->best.chi_square,
                1e-7 * (1.0 + slow->best.chi_square))
        << rows << "x" << cols << " k=" << k << " trial=" << trial;
    EXPECT_LE(fast->stats.positions_examined,
              slow->stats.positions_examined);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Mss2dEquivalence,
    ::testing::Combine(::testing::Values<int64_t>(1, 3, 8, 17),
                       ::testing::Values<int64_t>(1, 4, 9, 30),
                       ::testing::Values(2, 3)),
    [](const ::testing::TestParamInfo<Mss2dEquivalence::ParamType>& info) {
      return "r" + std::to_string(std::get<0>(info.param)) + "_c" +
             std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

TEST(FindMss2dTest, SingleRowMatchesOneDimensionalProblem) {
  // A 1×C grid is exactly the 1-D MSS problem.
  seq::Rng rng(21);
  auto model = seq::MultinomialModel::Uniform(2);
  seq::Grid grid = seq::Grid::GenerateNull(model, 1, 400, rng);
  auto two_d = FindMss2d(grid, model);
  ASSERT_TRUE(two_d.ok());
  seq::Sequence s(2);
  for (int64_t c = 0; c < 400; ++c) s.Append(grid.at(0, c));
  auto one_d = FindMss(s, model);
  ASSERT_TRUE(one_d.ok());
  EXPECT_X2_EQ(two_d->best.chi_square, one_d->best.chi_square);
  // Positions may differ only under exact ties; verify the 2-D winner's
  // value directly in 1-D terms.
  std::vector<int64_t> counts =
      s.CountsInRange(two_d->best.col0, two_d->best.col1);
  ChiSquareContext ctx(model);
  EXPECT_X2_EQ(ctx.Evaluate(counts, two_d->best.col1 - two_d->best.col0),
               one_d->best.chi_square);
}

TEST(FindMss2dTest, RecoversPlantedRectangle) {
  seq::Rng rng(22);
  auto background = seq::MultinomialModel::Uniform(2);
  auto grid = seq::Grid::GenerateWithPlantedRect(
      background, 60, 80, 20, 35, 30, 55, {0.92, 0.08}, rng);
  ASSERT_TRUE(grid.ok());
  auto result = FindMss2d(grid.value(), background);
  ASSERT_TRUE(result.ok());
  const Rectangle& best = result->best;
  // Substantial overlap with the planted [20,35)x[30,55).
  int64_t row_overlap = std::min<int64_t>(best.row1, 35) -
                        std::max<int64_t>(best.row0, 20);
  int64_t col_overlap = std::min<int64_t>(best.col1, 55) -
                        std::max<int64_t>(best.col0, 30);
  EXPECT_GT(row_overlap, 10);
  EXPECT_GT(col_overlap, 18);
  EXPECT_GT(best.chi_square, 150.0);
}

TEST(FindMss2dTest, SkipsColumnsOnNullGrids) {
  seq::Rng rng(23);
  auto model = seq::MultinomialModel::Uniform(2);
  seq::Grid grid = seq::Grid::GenerateNull(model, 20, 200, rng);
  auto fast = FindMss2d(grid, model);
  auto slow = NaiveFindMss2d(grid, model);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_GT(fast->stats.skip_events, 0);
  EXPECT_LT(fast->stats.positions_examined,
            slow->stats.positions_examined / 2);
}

TEST(GridTest, MakeValidates) {
  EXPECT_TRUE(seq::Grid::Make(1, 3, 3).status().IsInvalidArgument());
  EXPECT_TRUE(seq::Grid::Make(2, 0, 3).status().IsInvalidArgument());
  EXPECT_TRUE(seq::Grid::Make(2, 3, -1).status().IsInvalidArgument());
  EXPECT_TRUE(seq::Grid::Make(2, 3, 3).ok());
}

TEST(GridTest, PlantedRectValidatesBounds) {
  seq::Rng rng(24);
  auto model = seq::MultinomialModel::Uniform(2);
  EXPECT_TRUE(seq::Grid::GenerateWithPlantedRect(model, 10, 10, 5, 4, 0, 3,
                                                 {0.9, 0.1}, rng)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(seq::Grid::GenerateWithPlantedRect(model, 10, 10, 0, 3, 8, 12,
                                                 {0.9, 0.1}, rng)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(seq::Grid::GenerateWithPlantedRect(model, 10, 10, 0, 3, 0, 3,
                                                 {0.9, 0.2}, rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(GridPrefixCountsTest, MatchesDirectCounting) {
  seq::Rng rng(25);
  auto model = seq::MultinomialModel::Uniform(3);
  seq::Grid grid = seq::Grid::GenerateNull(model, 12, 15, rng);
  seq::GridPrefixCounts counts(grid);
  for (int64_t r0 = 0; r0 <= 12; r0 += 3) {
    for (int64_t r1 = r0; r1 <= 12; r1 += 4) {
      for (int64_t c0 = 0; c0 <= 15; c0 += 5) {
        for (int64_t c1 = c0; c1 <= 15; c1 += 3) {
          for (int s = 0; s < 3; ++s) {
            int64_t direct = 0;
            for (int64_t r = r0; r < r1; ++r) {
              for (int64_t c = c0; c < c1; ++c) {
                if (grid.at(r, c) == s) ++direct;
              }
            }
            ASSERT_EQ(counts.CountInRect(s, r0, r1, c0, c1), direct)
                << "s=" << s << " [" << r0 << "," << r1 << ")x[" << c0 << ","
                << c1 << ")";
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace sigsub
