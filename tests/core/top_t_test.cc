#include "core/top_t.h"

#include <tuple>

#include "core/mss.h"
#include "core/naive.h"
#include "gtest/gtest.h"
#include "seq/generators.h"
#include "seq/rng.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

using ::sigsub::testing::Family;
using ::sigsub::testing::FamilyName;
using ::sigsub::testing::GenerateFamily;
using ::sigsub::testing::ScoringModel;

TEST(TopTCollectorTest, KeepsBestT) {
  TopTCollector c(3);
  EXPECT_LT(c.budget(), 0.0);  // Filling: every candidate is accepted.
  EXPECT_TRUE(c.Offer({0, 1, 5.0}));
  EXPECT_TRUE(c.Offer({1, 2, 3.0}));
  EXPECT_TRUE(c.Offer({2, 3, 8.0}));
  EXPECT_DOUBLE_EQ(c.budget(), 3.0);
  EXPECT_FALSE(c.Offer({3, 4, 2.0}));  // Below budget.
  EXPECT_FALSE(c.Offer({3, 4, 3.0}));  // Ties do not displace.
  EXPECT_TRUE(c.Offer({3, 4, 4.0}));
  EXPECT_DOUBLE_EQ(c.budget(), 4.0);
  auto sorted = c.TakeSortedDescending();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_DOUBLE_EQ(sorted[0].chi_square, 8.0);
  EXPECT_DOUBLE_EQ(sorted[1].chi_square, 5.0);
  EXPECT_DOUBLE_EQ(sorted[2].chi_square, 4.0);
}

TEST(TopTCollectorTest, AcceptsAnyCandidateWhileBelowCapacity) {
  // Below capacity every candidate is among the best t seen so far, so
  // even X² = 0 (a perfectly balanced substring) must be kept. The old
  // behaviour — rejecting candidates at or below the budget while
  // filling — returned an empty list on all-zero sequences.
  TopTCollector c(2);
  EXPECT_LT(c.budget(), 0.0);  // Filling: nothing may be skipped.
  EXPECT_TRUE(c.Offer({0, 1, 0.0}));
  EXPECT_TRUE(c.Offer({1, 2, 0.0}));
  EXPECT_DOUBLE_EQ(c.budget(), 0.0);  // Full: now ties are rejected.
  EXPECT_FALSE(c.Offer({2, 3, 0.0}));
  EXPECT_TRUE(c.Offer({2, 3, 0.5}));
  auto sorted = c.TakeSortedDescending();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_DOUBLE_EQ(sorted[0].chi_square, 0.5);
  EXPECT_DOUBLE_EQ(sorted[1].chi_square, 0.0);
}

TEST(FindTopTTest, ValidatesInput) {
  seq::Rng rng(1);
  seq::Sequence s = seq::GenerateNull(2, 10, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  EXPECT_TRUE(FindTopT(s, model, 0).status().IsInvalidArgument());
  seq::Sequence empty(2);
  EXPECT_TRUE(FindTopT(empty, model, 3).status().IsInvalidArgument());
}

TEST(FindTopTTest, TopOneEqualsMss) {
  seq::Rng rng(21);
  seq::Sequence s = seq::GenerateNull(3, 800, rng);
  auto model = seq::MultinomialModel::Uniform(3);
  auto top = FindTopT(s, model, 1);
  auto mss = FindMss(s, model);
  ASSERT_TRUE(top.ok());
  ASSERT_TRUE(mss.ok());
  ASSERT_EQ(top->top.size(), 1u);
  EXPECT_X2_EQ(top->top[0].chi_square, mss->best.chi_square);
}

TEST(FindTopTTest, ResultsAreSortedAndDistinct) {
  seq::Rng rng(22);
  seq::Sequence s = seq::GenerateNull(2, 500, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto top = FindTopT(s, model, 25);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->top.size(), 25u);
  for (size_t i = 1; i < top->top.size(); ++i) {
    EXPECT_GE(top->top[i - 1].chi_square, top->top[i].chi_square);
  }
  // All (start, end) pairs distinct.
  for (size_t i = 0; i < top->top.size(); ++i) {
    for (size_t j = i + 1; j < top->top.size(); ++j) {
      EXPECT_FALSE(top->top[i].start == top->top[j].start &&
                   top->top[i].end == top->top[j].end)
          << i << "," << j;
    }
  }
}

TEST(FindTopTTest, TLargerThanSubstringCount) {
  auto model = seq::MultinomialModel::Uniform(2);
  seq::Sequence s = seq::Sequence::FromSymbols(2, {0, 1, 0}).value();
  auto top = FindTopT(s, model, 100);
  ASSERT_TRUE(top.ok());
  // All 6 substrings are returned, including the balanced zero-scorers.
  EXPECT_EQ(top->top.size(), 6u);
  for (const auto& sub : top->top) EXPECT_GE(sub.chi_square, 0.0);
}

TEST(FindTopTTest, ReturnsExactlyTOnBalancedSequence) {
  // Regression: an alternating sequence has many perfectly balanced
  // (X² = 0) substrings; the heap must still fill to exactly t instead
  // of excluding candidates that tie the budget while it is filling.
  auto model = seq::MultinomialModel::Uniform(2);
  std::vector<uint8_t> symbols;
  for (int i = 0; i < 24; ++i) symbols.push_back(i % 2);
  seq::Sequence s = seq::Sequence::FromSymbols(2, symbols).value();
  for (int64_t t : {1, 5, 50, 200}) {
    auto fast = FindTopT(s, model, t);
    auto slow = NaiveFindTopT(s, model, t);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    // 24·25/2 = 300 substrings total, so every t here must be hit exactly.
    EXPECT_EQ(fast->top.size(), static_cast<size_t>(t)) << "t=" << t;
    ASSERT_EQ(slow->top.size(), static_cast<size_t>(t)) << "t=" << t;
    for (size_t i = 0; i < fast->top.size(); ++i) {
      EXPECT_X2_EQ(fast->top[i].chi_square, slow->top[i].chi_square)
          << "t=" << t << " rank " << i;
    }
  }
  // Rank 0 is the naive-MSS maximum.
  auto mss = NaiveFindMss(s, model);
  ASSERT_TRUE(mss.ok());
  EXPECT_X2_EQ(FindTopT(s, model, 3)->top[0].chi_square,
               mss->best.chi_square);
}

class TopTEquivalence
    : public ::testing::TestWithParam<std::tuple<int64_t, int, int64_t>> {};

TEST_P(TopTEquivalence, FastMatchesNaiveValues) {
  auto [n, k, t] = GetParam();
  seq::Rng rng(static_cast<uint64_t>(n * 31 + k * 7 + t));
  seq::Sequence s = seq::GenerateNull(k, n, rng);
  auto model = seq::MultinomialModel::Uniform(k);
  auto fast = FindTopT(s, model, t);
  auto slow = NaiveFindTopT(s, model, t);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  ASSERT_EQ(fast->top.size(), slow->top.size()) << "n=" << n << " t=" << t;
  for (size_t i = 0; i < fast->top.size(); ++i) {
    EXPECT_X2_EQ(fast->top[i].chi_square, slow->top[i].chi_square)
        << "rank " << i << " n=" << n << " k=" << k << " t=" << t;
  }
  EXPECT_LE(fast->stats.positions_examined, slow->stats.positions_examined);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopTEquivalence,
    ::testing::Combine(::testing::Values<int64_t>(5, 50, 300, 900),
                       ::testing::Values(2, 4),
                       ::testing::Values<int64_t>(1, 2, 10, 100)),
    [](const ::testing::TestParamInfo<TopTEquivalence::ParamType>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_t" +
             std::to_string(std::get<2>(info.param));
    });

TEST(TopTEquivalenceFamilies, MatchesNaiveOnNonNullStrings) {
  for (Family family : {Family::kGeometric, Family::kMarkov}) {
    seq::Rng rng(777 + static_cast<int>(family));
    seq::Sequence s = GenerateFamily(family, 3, 400, rng);
    seq::MultinomialModel model = ScoringModel(family, 3);
    auto fast = FindTopT(s, model, 20);
    auto slow = NaiveFindTopT(s, model, 20);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    ASSERT_EQ(fast->top.size(), slow->top.size()) << FamilyName(family);
    for (size_t i = 0; i < fast->top.size(); ++i) {
      EXPECT_X2_EQ(fast->top[i].chi_square, slow->top[i].chi_square)
          << FamilyName(family) << " rank " << i;
    }
  }
}

TEST(FindTopTTest, BudgetTighteningSkipsLessThanMss) {
  // With larger t the skip budget is smaller, so more positions must be
  // examined than the plain MSS scan.
  seq::Rng rng(33);
  seq::Sequence s = seq::GenerateNull(2, 4000, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto top1 = FindTopT(s, model, 1);
  auto top100 = FindTopT(s, model, 100);
  ASSERT_TRUE(top1.ok());
  ASSERT_TRUE(top100.ok());
  EXPECT_GE(top100->stats.positions_examined,
            top1->stats.positions_examined);
}

}  // namespace
}  // namespace core
}  // namespace sigsub
