#include "core/blocked_scan.h"

#include <tuple>

#include "core/naive.h"
#include "gtest/gtest.h"
#include "seq/generators.h"
#include "seq/rng.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

TEST(BlockedScanTest, ValidatesInput) {
  seq::Rng rng(1);
  seq::Sequence s = seq::GenerateNull(2, 10, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  EXPECT_TRUE(FindMssBlocked(s, model, 0).status().IsInvalidArgument());
  seq::Sequence empty(2);
  EXPECT_TRUE(FindMssBlocked(empty, model).status().IsInvalidArgument());
}

class BlockedScanEquivalence
    : public ::testing::TestWithParam<std::tuple<int64_t, int, int64_t>> {};

TEST_P(BlockedScanEquivalence, ExactForEveryBlockSize) {
  auto [n, k, block_size] = GetParam();
  seq::Rng rng(static_cast<uint64_t>(n * 17 + k + block_size * 3));
  seq::Sequence s = seq::GenerateNull(k, n, rng);
  auto model = seq::MultinomialModel::Uniform(k);
  auto blocked = FindMssBlocked(s, model, block_size);
  auto exact = NaiveFindMss(s, model);
  ASSERT_TRUE(blocked.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_X2_EQ(blocked->best.chi_square, exact->best.chi_square)
      << "n=" << n << " k=" << k << " B=" << block_size;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockedScanEquivalence,
    ::testing::Combine(::testing::Values<int64_t>(1, 7, 63, 64, 65, 400),
                       ::testing::Values(2, 3),
                       ::testing::Values<int64_t>(1, 3, 64, 1000)),
    [](const ::testing::TestParamInfo<BlockedScanEquivalence::ParamType>&
           info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_B" +
             std::to_string(std::get<2>(info.param));
    });

TEST(BlockedScanTest, SkipsBlocksOnNullStrings) {
  seq::Rng rng(9);
  seq::Sequence s = seq::GenerateNull(2, 4000, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto blocked = FindMssBlocked(s, model, 64);
  ASSERT_TRUE(blocked.ok());
  EXPECT_GT(blocked->stats.skip_events, 0);
  // Constant-factor improvement: fewer examined than the trivial count but
  // (unlike the paper's algorithm) still the same order of magnitude.
  EXPECT_LT(blocked->stats.positions_examined, TrivialScanPositions(4000));
  EXPECT_EQ(
      blocked->stats.positions_examined + blocked->stats.positions_skipped,
      TrivialScanPositions(4000));
}

TEST(BlockedScanTest, BlockSizeOneDegeneratesToTrivialCount) {
  // With B = 1 nothing can be block-skipped.
  seq::Rng rng(10);
  seq::Sequence s = seq::GenerateNull(2, 100, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto blocked = FindMssBlocked(s, model, 1);
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked->stats.positions_examined, TrivialScanPositions(100));
}

}  // namespace
}  // namespace core
}  // namespace sigsub
