#include "core/streaming.h"

#include <optional>

#include "gtest/gtest.h"
#include "seq/generators.h"
#include "seq/rng.h"
#include "stats/count_statistics.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

TEST(StreamingDetectorTest, MakeValidates) {
  auto model = seq::MultinomialModel::Uniform(2);
  StreamingDetector::Options bad_window;
  bad_window.max_window = 0;
  EXPECT_TRUE(
      StreamingDetector::Make(model, bad_window).status().IsInvalidArgument());
  StreamingDetector::Options bad_alpha;
  bad_alpha.alpha0 = -1.0;
  EXPECT_TRUE(
      StreamingDetector::Make(model, bad_alpha).status().IsInvalidArgument());
}

TEST(StreamingDetectorTest, ScalesAreDyadicPlusMax) {
  auto model = seq::MultinomialModel::Uniform(2);
  StreamingDetector::Options options;
  options.max_window = 100;
  auto detector = StreamingDetector::Make(model, options);
  ASSERT_TRUE(detector.ok());
  EXPECT_EQ(detector->scales(),
            (std::vector<int64_t>{1, 2, 4, 8, 16, 32, 64, 100}));
}

TEST(StreamingDetectorTest, SuffixWindowChiSquareIsExact) {
  // The alarm's X² must equal the offline statistic of the same window.
  seq::Rng rng(61);
  auto model = seq::MultinomialModel::Uniform(2);
  StreamingDetector::Options options;
  options.max_window = 64;
  options.alpha0 = 0.0;  // Alarm on anything positive.
  auto detector = StreamingDetector::Make(model, options);
  ASSERT_TRUE(detector.ok());
  seq::Sequence s = seq::GenerateNull(2, 300, rng);
  for (int64_t i = 0; i < s.size(); ++i) {
    auto alarm = detector->Append(s[i]);
    if (!alarm.has_value()) continue;
    std::vector<int64_t> counts =
        s.CountsInRange(alarm->end - alarm->length, alarm->end);
    double offline = stats::PearsonChiSquare(
        counts, std::vector<double>{0.5, 0.5});
    ASSERT_NEAR(alarm->chi_square, offline, 1e-9 * (1.0 + offline))
        << "i=" << i;
  }
}

TEST(StreamingDetectorTest, DetectsPlantedBurstPromptly) {
  seq::Rng rng(62);
  auto model = seq::MultinomialModel::Uniform(2);
  StreamingDetector::Options options;
  options.max_window = 512;
  options.alpha0 = 40.0;  // Far above null-stream noise at these scales.
  auto detector = StreamingDetector::Make(model, options);
  ASSERT_TRUE(detector.ok());

  auto stream = seq::GenerateRegimes(
      2, {{5000, {0.5, 0.5}}, {128, {0.05, 0.95}}, {2000, {0.5, 0.5}}}, rng);
  ASSERT_TRUE(stream.ok());
  int64_t first_alarm = -1;
  for (int64_t i = 0; i < stream->size(); ++i) {
    auto alarm = detector->Append((*stream)[i]);
    if (alarm.has_value() && first_alarm < 0) first_alarm = alarm->end;
  }
  ASSERT_GE(first_alarm, 0) << "burst was never flagged";
  // Flagged inside or shortly after the planted burst [5000, 5128).
  EXPECT_GT(first_alarm, 5000);
  EXPECT_LT(first_alarm, 5200);
}

TEST(StreamingDetectorTest, QuietOnNullStreamWithCalibratedThreshold) {
  seq::Rng rng(63);
  auto model = seq::MultinomialModel::Uniform(2);
  StreamingDetector::Options options;
  options.max_window = 256;
  // Bonferroni across ~n·log(W) tested windows at family alpha 0.1%.
  double tested = 20000.0 * 9.0;
  options.alpha0 = stats::ChiSquareThresholdForPValue(0.001 / tested, 2);
  auto detector = StreamingDetector::Make(model, options);
  ASSERT_TRUE(detector.ok());
  seq::Sequence s = seq::GenerateNull(2, 20000, rng);
  int64_t alarms = 0;
  for (int64_t i = 0; i < s.size(); ++i) {
    if (detector->Append(s[i]).has_value()) ++alarms;
  }
  EXPECT_EQ(alarms, 0);
}

TEST(StreamingDetectorTest, IncrementalCountsMatchBruteForceAtEveryStep) {
  // Exercises the symbol ring across many wraparounds: at every position
  // the detector's strongest alarm must match a brute-force evaluation
  // of every monitored suffix window.
  seq::Rng rng(64);
  auto model = seq::MultinomialModel::Make({0.2, 0.3, 0.5}).value();
  StreamingDetector::Options options;
  options.max_window = 13;  // Non-dyadic max, small enough to wrap often.
  options.alpha0 = 0.0;
  auto detector = StreamingDetector::Make(model, options).value();
  seq::Sequence s = seq::GenerateNull(3, 400, rng);
  std::vector<double> probs{0.2, 0.3, 0.5};
  for (int64_t i = 0; i < s.size(); ++i) {
    auto alarm = detector.Append(s[i]);
    std::optional<StreamingDetector::Alarm> expected;
    for (int64_t scale : detector.scales()) {
      if (scale > i + 1) break;
      std::vector<int64_t> counts = s.CountsInRange(i + 1 - scale, i + 1);
      double x2 = stats::PearsonChiSquare(counts, probs);
      if (x2 > 0.0 && (!expected.has_value() || x2 > expected->chi_square)) {
        expected = StreamingDetector::Alarm{i + 1, scale, x2};
      }
    }
    ASSERT_EQ(alarm.has_value(), expected.has_value()) << "i=" << i;
    if (alarm.has_value()) {
      EXPECT_EQ(alarm->length, expected->length) << "i=" << i;
      ASSERT_NEAR(alarm->chi_square, expected->chi_square,
                  1e-9 * (1.0 + expected->chi_square))
          << "i=" << i;
    }
  }
}

TEST(StreamingDetectorTest, TryAppendRejectsOutOfRangeSymbol) {
  auto model = seq::MultinomialModel::Uniform(2);
  auto detector = StreamingDetector::Make(model, {}).value();
  auto bad = detector.TryAppend(2);
  ASSERT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_EQ(detector.position(), 0);  // State untouched by the rejection.
  auto good = detector.TryAppend(1);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(detector.position(), 1);
}

TEST(StreamingDetectorTest, PositionCounts) {
  auto model = seq::MultinomialModel::Uniform(2);
  auto detector = StreamingDetector::Make(model, {}).value();
  EXPECT_EQ(detector.position(), 0);
  detector.Append(0);
  detector.Append(1);
  EXPECT_EQ(detector.position(), 2);
}

TEST(StreamingDetectorTest, WindowOneAlarmsOnEverySymbolAtZeroThreshold) {
  auto model = seq::MultinomialModel::Make({0.25, 0.75}).value();
  StreamingDetector::Options options;
  options.max_window = 1;
  options.alpha0 = 0.0;
  auto detector = StreamingDetector::Make(model, options).value();
  auto alarm = detector.Append(0);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->length, 1);
  EXPECT_NEAR(alarm->chi_square, 3.0, 1e-12);  // 1/0.25 − 1.
}

}  // namespace
}  // namespace core
}  // namespace sigsub
