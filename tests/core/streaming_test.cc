#include "core/streaming.h"

#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "gtest/gtest.h"
#include "seq/generators.h"
#include "seq/rng.h"
#include "stats/chi_squared.h"
#include "stats/count_statistics.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

/// Options that alarm on any X² > threshold at every position (raw
/// threshold, hysteresis disabled) — the exact-parity configuration the
/// brute-force comparisons use.
StreamingDetector::Options RawThreshold(int64_t max_window,
                                        double threshold) {
  StreamingDetector::Options options;
  options.max_window = max_window;
  options.x2_threshold = threshold;
  options.rearm_fraction = std::numeric_limits<double>::infinity();
  return options;
}

TEST(StreamingDetectorTest, MakeValidates) {
  auto model = seq::MultinomialModel::Uniform(2);
  StreamingDetector::Options bad_window;
  bad_window.max_window = 0;
  EXPECT_TRUE(
      StreamingDetector::Make(model, bad_window).status().IsInvalidArgument());
  StreamingDetector::Options bad_alpha;
  bad_alpha.alpha = 0.0;  // Calibrated path needs alpha in (0, 1).
  EXPECT_TRUE(
      StreamingDetector::Make(model, bad_alpha).status().IsInvalidArgument());
  StreamingDetector::Options alpha_one;
  alpha_one.alpha = 1.0;
  EXPECT_TRUE(
      StreamingDetector::Make(model, alpha_one).status().IsInvalidArgument());
  StreamingDetector::Options bad_rearm;
  bad_rearm.rearm_fraction = -0.5;
  EXPECT_TRUE(
      StreamingDetector::Make(model, bad_rearm).status().IsInvalidArgument());
  // A raw threshold bypasses the alpha validation.
  StreamingDetector::Options raw;
  raw.alpha = 0.0;
  raw.x2_threshold = 10.0;
  EXPECT_TRUE(StreamingDetector::Make(model, raw).ok());
}

TEST(StreamingDetectorTest, ScalesAreDyadicPlusMax) {
  auto model = seq::MultinomialModel::Uniform(2);
  StreamingDetector::Options options;
  options.max_window = 100;
  auto detector = StreamingDetector::Make(model, options);
  ASSERT_TRUE(detector.ok());
  EXPECT_EQ(detector->scales(),
            (std::vector<int64_t>{1, 2, 4, 8, 16, 32, 64, 100}));
}

TEST(StreamingDetectorTest, ThresholdsFollowSidakCorrectedQuantile) {
  auto model = seq::MultinomialModel::Uniform(4);
  StreamingDetector::Options options;
  options.max_window = 256;  // 9 scales.
  options.alpha = 1e-4;
  auto detector = StreamingDetector::Make(model, options).value();
  ASSERT_EQ(detector.scale_thresholds().size(), detector.scales().size());
  const double per_scale =
      -std::expm1(std::log1p(-options.alpha) /
                  static_cast<double>(detector.scales().size()));
  const double expected =
      stats::ChiSquaredDistribution(3).CriticalValue(per_scale);
  for (double threshold : detector.scale_thresholds()) {
    EXPECT_DOUBLE_EQ(threshold, expected);
  }
  // Sanity: the family threshold is deeper than the uncorrected one.
  EXPECT_GT(expected, stats::ChiSquaredDistribution(3).CriticalValue(
                          options.alpha));
}

TEST(StreamingDetectorTest, SuffixWindowChiSquareIsExact) {
  // The alarm's X² must equal the offline statistic of the same window.
  seq::Rng rng(61);
  auto model = seq::MultinomialModel::Uniform(2);
  auto detector =
      StreamingDetector::Make(model, RawThreshold(64, 0.0)).value();
  seq::Sequence s = seq::GenerateNull(2, 300, rng);
  for (int64_t i = 0; i < s.size(); ++i) {
    auto alarm = detector.Append(s[i]);
    if (!alarm.has_value()) continue;
    std::vector<int64_t> counts =
        s.CountsInRange(alarm->end - alarm->length, alarm->end);
    double offline = stats::PearsonChiSquare(
        counts, std::vector<double>{0.5, 0.5});
    ASSERT_NEAR(alarm->chi_square, offline, 1e-9 * (1.0 + offline))
        << "i=" << i;
    EXPECT_NEAR(alarm->p_value, stats::ChiSquarePValue(alarm->chi_square, 2),
                1e-12);
  }
}

TEST(StreamingDetectorTest, DetectsPlantedBurstPromptly) {
  seq::Rng rng(62);
  auto model = seq::MultinomialModel::Uniform(2);
  StreamingDetector::Options options;
  options.max_window = 512;
  options.alpha = 1e-6;  // The calibrated default-style threshold.
  auto detector = StreamingDetector::Make(model, options);
  ASSERT_TRUE(detector.ok());

  auto stream = seq::GenerateRegimes(
      2, {{5000, {0.5, 0.5}}, {128, {0.05, 0.95}}, {2000, {0.5, 0.5}}}, rng);
  ASSERT_TRUE(stream.ok());
  int64_t first_alarm = -1;
  for (int64_t i = 0; i < stream->size(); ++i) {
    auto alarm = detector->Append((*stream)[i]);
    if (alarm.has_value() && first_alarm < 0) first_alarm = alarm->end;
  }
  ASSERT_GE(first_alarm, 0) << "burst was never flagged";
  // Flagged inside or shortly after the planted burst [5000, 5128).
  EXPECT_GT(first_alarm, 5000);
  EXPECT_LT(first_alarm, 5200);
}

TEST(StreamingDetectorTest, DefaultOptionsDoNotAlarmSpamOnNullStream) {
  // Regression: the former default (alpha0 = 0.0, alarm when X² > 0)
  // alarmed on essentially every append once a window filled. The
  // calibrated default must keep a pure null stream quiet.
  seq::Rng rng(63);
  auto model = seq::MultinomialModel::Uniform(2);
  auto detector = StreamingDetector::Make(model, {}).value();
  seq::Sequence s = seq::GenerateNull(2, 20000, rng);
  int64_t alarms = 0;
  for (int64_t i = 0; i < s.size(); ++i) {
    if (detector.Append(s[i]).has_value()) ++alarms;
  }
  EXPECT_EQ(alarms, 0);
  EXPECT_EQ(detector.alarms_raised(), 0);
}

TEST(StreamingDetectorTest, NullStreamFalsePositiveRateIsNearAlpha) {
  // Calibration check: with hysteresis disabled, the per-position
  // family-wise exceedance rate on a null stream must sit near (and,
  // by Šidák conservatism under the positive dependence of nested
  // windows plus the discreteness of the short scales, below) alpha.
  // The band is deliberately generous — it catches an uncalibrated
  // threshold (rate ~1) or a threshold pushed far too deep (rate 0),
  // not distributional fine print.
  seq::Rng rng(64);
  const double alpha = 0.02;
  auto model = seq::MultinomialModel::Uniform(4);
  StreamingDetector::Options options;
  options.max_window = 256;
  options.alpha = alpha;
  options.rearm_fraction = std::numeric_limits<double>::infinity();
  auto detector = StreamingDetector::Make(model, options).value();
  const int64_t n = 100000;
  seq::Sequence s = seq::GenerateNull(4, n, rng);
  int64_t alarm_positions = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (detector.Append(s[i]).has_value()) ++alarm_positions;
  }
  const double rate = static_cast<double>(alarm_positions) /
                      static_cast<double>(n);
  EXPECT_GT(rate, alpha / 50.0) << "threshold far too deep";
  EXPECT_LT(rate, 2.0 * alpha) << "threshold not calibrated";
}

TEST(StreamingDetectorTest, HysteresisRaisesOneAlarmPerScalePerExcursion) {
  // A sustained anomaly must not alarm at every position: each scale
  // alarms once when it crosses its threshold and stays silent until it
  // rearms below rearm_fraction * threshold.
  seq::Rng rng(65);
  auto model = seq::MultinomialModel::Uniform(2);
  StreamingDetector::Options options;
  options.max_window = 64;
  options.alpha = 1e-6;
  options.rearm_fraction = 0.5;
  auto detector = StreamingDetector::Make(model, options).value();
  auto stream = seq::GenerateRegimes(
      2, {{2000, {0.5, 0.5}}, {400, {0.02, 0.98}}, {2000, {0.5, 0.5}}}, rng);
  ASSERT_TRUE(stream.ok());
  for (int64_t i = 0; i < stream->size(); ++i) detector.Append((*stream)[i]);
  // One sustained 400-symbol excursion, 7 monitored scales: without
  // hysteresis the burst would raise hundreds of alarms (one per
  // position per scale while inside the window).
  EXPECT_GT(detector.alarms_raised(), 0);
  EXPECT_LE(detector.alarms_raised(),
            2 * static_cast<int64_t>(detector.scales().size()));
}

TEST(StreamingDetectorTest, IncrementalCountsMatchBruteForceAtEveryStep) {
  // Exercises the symbol ring across many wraparounds: at every position
  // the detector's strongest alarm must match a brute-force evaluation
  // of every monitored suffix window.
  seq::Rng rng(66);
  auto model = seq::MultinomialModel::Make({0.2, 0.3, 0.5}).value();
  auto detector =
      StreamingDetector::Make(model, RawThreshold(13, 0.0)).value();
  seq::Sequence s = seq::GenerateNull(3, 400, rng);
  std::vector<double> probs{0.2, 0.3, 0.5};
  for (int64_t i = 0; i < s.size(); ++i) {
    auto alarm = detector.Append(s[i]);
    std::optional<StreamingDetector::Alarm> expected;
    for (int64_t scale : detector.scales()) {
      if (scale > i + 1) break;
      std::vector<int64_t> counts = s.CountsInRange(i + 1 - scale, i + 1);
      double x2 = stats::PearsonChiSquare(counts, probs);
      if (x2 > 0.0 && (!expected.has_value() || x2 > expected->chi_square)) {
        expected = StreamingDetector::Alarm{i + 1, scale, x2, 0.0};
      }
    }
    ASSERT_EQ(alarm.has_value(), expected.has_value()) << "i=" << i;
    if (alarm.has_value()) {
      EXPECT_EQ(alarm->length, expected->length) << "i=" << i;
      ASSERT_NEAR(alarm->chi_square, expected->chi_square,
                  1e-9 * (1.0 + expected->chi_square))
          << "i=" << i;
    }
  }
}

TEST(StreamingDetectorTest, AppendChunkMatchesPerSymbolAppend) {
  // The chunked pass must match per-symbol ingestion under the documented
  // contract: counter state (and hence CurrentChiSquares) bit-identical
  // for any chunking, the same alarm events at the same positions, and
  // alarm X² values equal to ~1e-12 relative (the sliding weighted sum
  // reorders floating-point work; it reseeds at every chunk boundary).
  // Compared across several chunk sizes, against both Append and
  // single-symbol AppendChunk (whose event list is complete, unlike
  // Append's strongest-only return).
  seq::Rng rng(67);
  auto model = seq::MultinomialModel::Uniform(4);
  auto stream = seq::GenerateRegimes(
      4,
      {{3000, {0.25, 0.25, 0.25, 0.25}},
       {200, {0.85, 0.05, 0.05, 0.05}},
       {3000, {0.25, 0.25, 0.25, 0.25}},
       {150, {0.05, 0.05, 0.05, 0.85}},
       {1000, {0.25, 0.25, 0.25, 0.25}}},
      rng);
  ASSERT_TRUE(stream.ok());
  std::span<const uint8_t> symbols = stream->symbols();

  StreamingDetector::Options options;
  options.max_window = 300;  // Non-dyadic max, wraps the ring often.
  options.alpha = 1e-4;

  auto reference = StreamingDetector::Make(model, options).value();
  std::vector<StreamingDetector::Alarm> reference_alarms;
  for (size_t i = 0; i < symbols.size(); ++i) {
    // Single-symbol chunks return every alarm event (no strongest-only
    // filtering), giving the complete reference event list.
    for (const auto& alarm : reference.AppendChunk(symbols.subspan(i, 1))) {
      reference_alarms.push_back(alarm);
    }
  }

  auto per_symbol = StreamingDetector::Make(model, options).value();
  for (size_t i = 0; i < symbols.size(); ++i) per_symbol.Append(symbols[i]);
  EXPECT_EQ(per_symbol.alarms_raised(), reference.alarms_raised());
  EXPECT_EQ(per_symbol.CurrentChiSquares(), reference.CurrentChiSquares());

  for (size_t chunk :
       {size_t{7}, size_t{64}, size_t{301}, size_t{4096}, symbols.size()}) {
    auto chunked = StreamingDetector::Make(model, options).value();
    std::vector<StreamingDetector::Alarm> chunked_alarms;
    for (size_t offset = 0; offset < symbols.size(); offset += chunk) {
      size_t take = std::min(chunk, symbols.size() - offset);
      for (const auto& alarm :
           chunked.AppendChunk(symbols.subspan(offset, take))) {
        chunked_alarms.push_back(alarm);
      }
    }
    ASSERT_EQ(chunked.position(), reference.position()) << "chunk=" << chunk;
    // Bit-identical final window state...
    EXPECT_EQ(chunked.CurrentChiSquares(), reference.CurrentChiSquares())
        << "chunk=" << chunk;
    // ...and the identical alarm-event sequence.
    ASSERT_EQ(chunked_alarms.size(), reference_alarms.size())
        << "chunk=" << chunk;
    for (size_t a = 0; a < chunked_alarms.size(); ++a) {
      EXPECT_EQ(chunked_alarms[a].end, reference_alarms[a].end);
      EXPECT_EQ(chunked_alarms[a].length, reference_alarms[a].length);
      EXPECT_NEAR(chunked_alarms[a].chi_square,
                  reference_alarms[a].chi_square,
                  1e-9 * (1.0 + reference_alarms[a].chi_square));
    }
    EXPECT_GT(chunked_alarms.size(), 0u) << "planted bursts never alarmed";
  }
}

TEST(StreamingDetectorTest, AppendChunkOrdersAlarmsByStreamPosition) {
  // The scale-major pass emits alarms grouped by scale; the returned list
  // must nonetheless be in stream order.
  seq::Rng rng(68);
  auto model = seq::MultinomialModel::Uniform(2);
  auto stream = seq::GenerateRegimes(
      2, {{1000, {0.5, 0.5}}, {300, {0.03, 0.97}}, {500, {0.5, 0.5}}}, rng);
  ASSERT_TRUE(stream.ok());
  StreamingDetector::Options options;
  options.max_window = 128;
  options.alpha = 1e-4;
  auto detector = StreamingDetector::Make(model, options).value();
  auto alarms = detector.AppendChunk(stream->symbols());
  ASSERT_GT(alarms.size(), 1u);
  for (size_t i = 1; i < alarms.size(); ++i) {
    EXPECT_LE(alarms[i - 1].end, alarms[i].end);
  }
}

TEST(StreamingDetectorTest, TryAppendRejectsOutOfRangeSymbol) {
  auto model = seq::MultinomialModel::Uniform(2);
  auto detector = StreamingDetector::Make(model, {}).value();
  auto bad = detector.TryAppend(2);
  ASSERT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_EQ(detector.position(), 0);  // State untouched by the rejection.
  auto good = detector.TryAppend(1);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(detector.position(), 1);
}

TEST(StreamingDetectorTest, TryAppendChunkRejectsWithoutStateChange) {
  auto model = seq::MultinomialModel::Uniform(2);
  auto detector = StreamingDetector::Make(model, {}).value();
  std::vector<uint8_t> good{0, 1, 0, 1};
  ASSERT_TRUE(detector.TryAppendChunk(good).ok());
  EXPECT_EQ(detector.position(), 4);
  // The bad symbol sits mid-chunk: nothing before it may be applied.
  std::vector<uint8_t> bad{0, 1, 7, 1};
  auto rejected = detector.TryAppendChunk(bad);
  ASSERT_TRUE(rejected.status().IsInvalidArgument());
  EXPECT_EQ(detector.position(), 4);
}

TEST(StreamingDetectorTest, SharedContextMakeMatchesModelMake) {
  seq::Rng rng(69);
  auto model = seq::MultinomialModel::Uniform(4);
  auto context = std::make_shared<const ChiSquareContext>(model);
  StreamingDetector::Options options;
  options.max_window = 64;
  options.alpha = 1e-3;
  auto from_model = StreamingDetector::Make(model, options).value();
  auto from_context = StreamingDetector::Make(context, options).value();
  seq::Sequence s = seq::GenerateNull(4, 2000, rng);
  from_model.AppendChunk(s.symbols());
  from_context.AppendChunk(s.symbols());
  EXPECT_EQ(from_model.alarms_raised(), from_context.alarms_raised());
  EXPECT_EQ(from_model.CurrentChiSquares(), from_context.CurrentChiSquares());
  EXPECT_TRUE(
      StreamingDetector::Make(std::shared_ptr<const ChiSquareContext>(),
                              options)
          .status()
          .IsInvalidArgument());
}

TEST(StreamingDetectorTest, PositionCounts) {
  auto model = seq::MultinomialModel::Uniform(2);
  auto detector = StreamingDetector::Make(model, {}).value();
  EXPECT_EQ(detector.position(), 0);
  detector.Append(0);
  detector.Append(1);
  EXPECT_EQ(detector.position(), 2);
  detector.AppendChunk(std::vector<uint8_t>{0, 0, 1});
  EXPECT_EQ(detector.position(), 5);
}

TEST(StreamingDetectorTest, WindowOneAlarmsOnEverySymbolAtZeroThreshold) {
  auto model = seq::MultinomialModel::Make({0.25, 0.75}).value();
  auto detector =
      StreamingDetector::Make(model, RawThreshold(1, 0.0)).value();
  auto alarm = detector.Append(0);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->length, 1);
  EXPECT_NEAR(alarm->chi_square, 3.0, 1e-12);  // 1/0.25 − 1.
}

}  // namespace
}  // namespace core
}  // namespace sigsub
