#include "core/suffix_scan.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/chi_square.h"
#include "core/markov_scan.h"
#include "gtest/gtest.h"
#include "seq/generators.h"
#include "seq/model.h"
#include "seq/rng.h"
#include "seq/sequence.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

seq::Sequence FromPattern(int k, const std::string& pattern) {
  std::vector<uint8_t> symbols;
  symbols.reserve(pattern.size());
  for (char c : pattern) {
    symbols.push_back(static_cast<uint8_t>(c - 'a'));
  }
  return seq::Sequence::FromSymbols(k, std::move(symbols)).value();
}

/// The adversarial repetitive strings of the property sweep: runs,
/// alternations, squares, a Fibonacci word (maximal repetition density),
/// and strings that use only part of the alphabet.
std::vector<seq::Sequence> AdversarialStrings(int k) {
  std::string fib_a = "a";
  std::string fib_b = "ab";
  while (fib_b.size() < 60) {
    std::string next = fib_b + fib_a;
    fib_a = fib_b;
    fib_b = next;
  }
  std::vector<std::string> patterns = {
      std::string(40, 'a'),
      "abababababababababababab",
      "aabbaabbaabbaabbaabb",
      fib_b,
      "a",
      "ab",
      "ba",
      "aabab",
  };
  if (k >= 4) {
    patterns.push_back("abcdabcdabcdabcd");
    patterns.push_back("abcddcbaabcddcba");
    patterns.push_back("aaaabbbbccccdddd");
  }
  std::vector<seq::Sequence> out;
  for (const std::string& pattern : patterns) {
    out.push_back(FromPattern(k, pattern));
  }
  return out;
}

std::string TextOf(const seq::Sequence& s, const Substring& sub) {
  std::string text;
  for (int64_t i = sub.start; i < sub.end; ++i) {
    text.push_back(static_cast<char>('a' + s[i]));
  }
  return text;
}

/// Brute-force suffix array for validating the SA-IS construction.
std::vector<int32_t> BruteSuffixArray(const seq::Sequence& s) {
  std::vector<int32_t> sa(static_cast<size_t>(s.size()));
  std::iota(sa.begin(), sa.end(), 0);
  std::sort(sa.begin(), sa.end(), [&](int32_t a, int32_t b) {
    return std::lexicographical_compare(
        s.symbols().begin() + a, s.symbols().end(),
        s.symbols().begin() + b, s.symbols().end());
  });
  return sa;
}

void ExpectSameResult(const seq::Sequence& s, const SuffixScanResult& got,
                      const SuffixScanResult& want, const std::string& label) {
  ASSERT_EQ(got.classes.size(), want.classes.size()) << label;
  EXPECT_EQ(got.match_count, want.match_count) << label;
  for (size_t i = 0; i < got.classes.size(); ++i) {
    const SubstringClass& g = got.classes[i];
    const SubstringClass& w = want.classes[i];
    EXPECT_EQ(TextOf(s, g.substring), TextOf(s, w.substring))
        << label << " row " << i;
    EXPECT_EQ(g.substring.start, w.substring.start) << label << " row " << i;
    EXPECT_EQ(g.substring.end, w.substring.end) << label << " row " << i;
    EXPECT_EQ(g.count, w.count) << label << " row " << i;
    // The gate of the subsystem: bit-identical X² across the suffix and
    // per-position paths (same fused kernel, same integer counts).
    EXPECT_EQ(g.substring.chi_square, w.substring.chi_square)
        << label << " row " << i << " text " << TextOf(s, g.substring);
    EXPECT_EQ(g.p_value, w.p_value) << label << " row " << i;
  }
  ASSERT_EQ(got.positions.size(), want.positions.size()) << label;
  for (size_t i = 0; i < got.positions.size(); ++i) {
    EXPECT_EQ(got.positions[i], want.positions[i]) << label << " row " << i;
  }
}

TEST(SuffixScanIndexTest, SuffixArrayMatchesBruteForceSort) {
  for (int k : {2, 4}) {
    seq::Rng rng(1234 + static_cast<uint64_t>(k));
    std::vector<seq::Sequence> cases = AdversarialStrings(k);
    for (int64_t n : {1, 2, 3, 7, 33, 100, 257}) {
      cases.push_back(seq::GenerateNull(k, n, rng));
    }
    for (const seq::Sequence& s : cases) {
      ASSERT_OK_AND_ASSIGN(SuffixScan scan,
                           SuffixScan::Build(s.symbols(), k));
      std::vector<int32_t> brute = BruteSuffixArray(s);
      ASSERT_EQ(scan.suffix_array().size(), brute.size());
      for (size_t r = 0; r < brute.size(); ++r) {
        EXPECT_EQ(scan.suffix_array()[r], brute[r])
            << "n=" << s.size() << " rank " << r;
      }
      // LCP spot check against direct comparison.
      for (size_t r = 1; r < brute.size(); ++r) {
        int64_t a = brute[r - 1];
        int64_t b = brute[r];
        int64_t h = 0;
        while (a + h < s.size() && b + h < s.size() &&
               s[a + h] == s[b + h]) {
          ++h;
        }
        EXPECT_EQ(scan.lcp_array()[r], h) << "rank " << r;
      }
    }
  }
}

TEST(SuffixScanPropertyTest, MatchesNaiveReferenceMultinomial) {
  struct OptionCase {
    SuffixScanOptions options;
    std::string label;
  };
  std::vector<OptionCase> option_cases;
  {
    SuffixScanOptions o;
    o.top_n = 0;
    o.collect_positions = true;
    option_cases.push_back({o, "maximal_all"});
    o.min_count = 2;
    option_cases.push_back({o, "maximal_min_count_2"});
    o.min_count = 1;
    o.max_length = 5;
    option_cases.push_back({o, "maximal_max_len_5"});
    o.maximal_only = false;
    o.max_length = 6;
    option_cases.push_back({o, "full_max_len_6"});
    o.min_length = 2;
    option_cases.push_back({o, "full_min_len_2"});
  }
  for (int k : {2, 4}) {
    seq::Rng rng(99 + static_cast<uint64_t>(k));
    std::vector<seq::Sequence> cases = AdversarialStrings(k);
    for (int64_t n : {16, 60, 120}) {
      cases.push_back(seq::GenerateNull(k, n, rng));
      cases.push_back(
          seq::GenerateMultinomial(seq::MultinomialModel::Geometric(k), n,
                                   rng));
    }
    ChiSquareContext uniform(seq::MultinomialModel::Uniform(k));
    ChiSquareContext geometric(seq::MultinomialModel::Geometric(k));
    for (const seq::Sequence& s : cases) {
      ASSERT_OK_AND_ASSIGN(SuffixScan scan,
                           SuffixScan::Build(s.symbols(), k));
      for (const ChiSquareContext& context : {uniform, geometric}) {
        for (const OptionCase& option_case : option_cases) {
          ASSERT_OK_AND_ASSIGN(SuffixScanResult got,
                               scan.Scan(context, option_case.options));
          ASSERT_OK_AND_ASSIGN(
              SuffixScanResult want,
              NaiveAllSubstringsScan(s, context, option_case.options));
          ExpectSameResult(s, got, want,
                           option_case.label + " n=" +
                               std::to_string(s.size()) +
                               " k=" + std::to_string(k));
        }
      }
    }
  }
}

TEST(SuffixScanPropertyTest, MatchesNaiveReferenceMarkov) {
  SuffixScanOptions options;
  options.top_n = 0;
  options.min_length = 2;
  options.collect_positions = true;
  for (int k : {2, 4}) {
    seq::Rng rng(7 + static_cast<uint64_t>(k));
    seq::MarkovModel model = seq::MarkovModel::PaperFamily(k);
    ASSERT_OK_AND_ASSIGN(MarkovChiSquare context, MarkovChiSquare::Make(model));
    std::vector<seq::Sequence> cases = AdversarialStrings(k);
    cases.push_back(seq::GenerateMarkov(model, 80, rng));
    cases.push_back(seq::GenerateNull(k, 50, rng));
    for (const seq::Sequence& s : cases) {
      ASSERT_OK_AND_ASSIGN(SuffixScan scan,
                           SuffixScan::Build(s.symbols(), k));
      ASSERT_OK_AND_ASSIGN(SuffixScanResult got, scan.ScanMarkov(context, options));
      ASSERT_OK_AND_ASSIGN(
          SuffixScanResult want,
          NaiveAllSubstringsScanMarkov(s, context, options));
      ExpectSameResult(s, got, want, "markov n=" + std::to_string(s.size()));
    }
  }
}

TEST(SuffixScanContractTest, MaximalOnlyReportsClassMaximalSubstrings) {
  // S = abab. Class-maximal means every one-symbol right extension occurs
  // strictly fewer times: {b, ab, bab, abab} qualify; a (→ab keeps count
  // 2), ba (→bab keeps count 1) and aba (→abab keeps count 1) do not.
  seq::Sequence s = FromPattern(2, "abab");
  ChiSquareContext context(seq::MultinomialModel::Uniform(2));
  ASSERT_OK_AND_ASSIGN(SuffixScan scan, SuffixScan::Build(s.symbols(), 2));
  SuffixScanOptions options;
  options.top_n = 0;
  ASSERT_OK_AND_ASSIGN(SuffixScanResult result, scan.Scan(context, options));
  std::vector<std::string> texts;
  std::vector<int64_t> counts;
  for (const SubstringClass& entry : result.classes) {
    texts.push_back(TextOf(s, entry.substring));
    counts.push_back(entry.count);
  }
  std::vector<std::pair<std::string, int64_t>> rows;
  for (size_t i = 0; i < texts.size(); ++i) {
    rows.emplace_back(texts[i], counts[i]);
  }
  std::sort(rows.begin(), rows.end());
  std::vector<std::pair<std::string, int64_t>> want = {
      {"ab", 2}, {"abab", 1}, {"b", 2}, {"bab", 1}};
  EXPECT_EQ(rows, want);
}

TEST(SuffixScanContractTest, TopNIsPrefixOfFullOrdering) {
  seq::Rng rng(42);
  seq::Sequence s = seq::GenerateNull(4, 200, rng);
  ChiSquareContext context(seq::MultinomialModel::Uniform(4));
  ASSERT_OK_AND_ASSIGN(SuffixScan scan, SuffixScan::Build(s.symbols(), 4));
  SuffixScanOptions all;
  all.top_n = 0;
  ASSERT_OK_AND_ASSIGN(SuffixScanResult full, scan.Scan(context, all));
  SuffixScanOptions top;
  top.top_n = 7;
  ASSERT_OK_AND_ASSIGN(SuffixScanResult cut, scan.Scan(context, top));
  ASSERT_EQ(cut.classes.size(), 7u);
  EXPECT_EQ(cut.match_count, full.match_count);
  for (size_t i = 0; i < cut.classes.size(); ++i) {
    EXPECT_EQ(cut.classes[i].substring.start, full.classes[i].substring.start);
    EXPECT_EQ(cut.classes[i].substring.end, full.classes[i].substring.end);
    EXPECT_EQ(cut.classes[i].substring.chi_square,
              full.classes[i].substring.chi_square);
  }
}

TEST(SuffixScanContractTest, ThresholdFiltersAndCounts) {
  seq::Rng rng(11);
  seq::Sequence s = seq::GenerateBiasedBinary(0.9, 300, rng);
  ChiSquareContext context(seq::MultinomialModel::Uniform(2));
  ASSERT_OK_AND_ASSIGN(SuffixScan scan, SuffixScan::Build(s.symbols(), 2));
  SuffixScanOptions all;
  all.top_n = 0;
  ASSERT_OK_AND_ASSIGN(SuffixScanResult full, scan.Scan(context, all));
  SuffixScanOptions thresholded = all;
  thresholded.min_x2 = 10.0;
  ASSERT_OK_AND_ASSIGN(SuffixScanResult cut, scan.Scan(context, thresholded));
  int64_t expected = 0;
  for (const SubstringClass& entry : full.classes) {
    if (entry.substring.chi_square >= 10.0) ++expected;
  }
  EXPECT_GT(expected, 0);
  EXPECT_EQ(cut.match_count, expected);
  EXPECT_EQ(static_cast<int64_t>(cut.classes.size()), expected);
  for (const SubstringClass& entry : cut.classes) {
    EXPECT_GE(entry.substring.chi_square, 10.0);
  }
}

TEST(SuffixScanMappedTest, DecodeTableMatchesDecodedBuild) {
  const std::string text = "ACGTACGTGGGTTTACGT";
  seq::Alphabet alphabet = seq::Alphabet::FromCharacters("ACGT").value();
  ASSERT_OK_AND_ASSIGN(seq::Sequence s,
                       seq::Sequence::FromString(alphabet, text));
  std::array<uint8_t, 256> decode;
  decode.fill(0xFF);
  decode[static_cast<uint8_t>('A')] = 0;
  decode[static_cast<uint8_t>('C')] = 1;
  decode[static_cast<uint8_t>('G')] = 2;
  decode[static_cast<uint8_t>('T')] = 3;
  std::span<const uint8_t> bytes(
      reinterpret_cast<const uint8_t*>(text.data()), text.size());
  ASSERT_OK_AND_ASSIGN(SuffixScan mapped,
                       SuffixScan::BuildMapped(bytes, decode, 4));
  ASSERT_OK_AND_ASSIGN(SuffixScan decoded, SuffixScan::Build(s.symbols(), 4));
  ChiSquareContext context(seq::MultinomialModel::Uniform(4));
  SuffixScanOptions options;
  options.top_n = 0;
  options.collect_positions = true;
  ASSERT_OK_AND_ASSIGN(SuffixScanResult a, mapped.Scan(context, options));
  ASSERT_OK_AND_ASSIGN(SuffixScanResult b, decoded.Scan(context, options));
  ExpectSameResult(s, a, b, "mapped vs decoded");
}

TEST(SuffixScanMappedTest, RejectsBytesOutsideTheAlphabet) {
  const std::string text = "ACGTXACGT";
  std::array<uint8_t, 256> decode;
  decode.fill(0xFF);
  decode[static_cast<uint8_t>('A')] = 0;
  decode[static_cast<uint8_t>('C')] = 1;
  decode[static_cast<uint8_t>('G')] = 2;
  decode[static_cast<uint8_t>('T')] = 3;
  std::span<const uint8_t> bytes(
      reinterpret_cast<const uint8_t*>(text.data()), text.size());
  auto result = SuffixScan::BuildMapped(bytes, decode, 4);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SuffixScanEdgeTest, EmptyAndTinyRecords) {
  ChiSquareContext context(seq::MultinomialModel::Uniform(2));
  SuffixScanOptions options;
  options.top_n = 0;
  {
    std::vector<uint8_t> empty;
    ASSERT_OK_AND_ASSIGN(SuffixScan scan, SuffixScan::Build(empty, 2));
    ASSERT_OK_AND_ASSIGN(SuffixScanResult result, scan.Scan(context, options));
    EXPECT_TRUE(result.classes.empty());
    EXPECT_EQ(result.match_count, 0);
  }
  {
    std::vector<uint8_t> one = {1};
    ASSERT_OK_AND_ASSIGN(SuffixScan scan, SuffixScan::Build(one, 2));
    ASSERT_OK_AND_ASSIGN(SuffixScanResult result, scan.Scan(context, options));
    ASSERT_EQ(result.classes.size(), 1u);
    EXPECT_EQ(result.classes[0].substring.start, 0);
    EXPECT_EQ(result.classes[0].substring.end, 1);
    EXPECT_EQ(result.classes[0].count, 1);
  }
}

TEST(SuffixScanEdgeTest, RejectsBadOptionsAndMismatchedAlphabet) {
  std::vector<uint8_t> symbols = {0, 1, 0, 1};
  ASSERT_OK_AND_ASSIGN(SuffixScan scan, SuffixScan::Build(symbols, 2));
  ChiSquareContext context(seq::MultinomialModel::Uniform(2));
  {
    SuffixScanOptions options;
    options.min_length = 0;
    EXPECT_FALSE(scan.Scan(context, options).ok());
  }
  {
    SuffixScanOptions options;
    options.min_count = 0;
    EXPECT_FALSE(scan.Scan(context, options).ok());
  }
  {
    SuffixScanOptions options;
    options.min_length = 4;
    options.max_length = 2;
    EXPECT_FALSE(scan.Scan(context, options).ok());
  }
  {
    SuffixScanOptions options;
    options.top_n = -1;
    EXPECT_FALSE(scan.Scan(context, options).ok());
  }
  ChiSquareContext wrong(seq::MultinomialModel::Uniform(4));
  EXPECT_FALSE(scan.Scan(wrong, SuffixScanOptions()).ok());
  EXPECT_FALSE(
      SuffixScan::Build(symbols, 1).ok());  // Alphabet too small.
  std::vector<uint8_t> bad = {0, 3, 0};
  EXPECT_FALSE(SuffixScan::Build(bad, 2).ok());  // Symbol out of range.
}

TEST(SuffixScanStatsTest, ReportsIndexFootprint) {
  seq::Rng rng(5);
  seq::Sequence s = seq::GenerateNull(4, 512, rng);
  ASSERT_OK_AND_ASSIGN(SuffixScan scan, SuffixScan::Build(s.symbols(), 4));
  EXPECT_EQ(scan.index_bytes(), 512 * 8);
  EXPECT_GT(scan.peak_index_bytes(), 0);
  ChiSquareContext context(seq::MultinomialModel::Uniform(4));
  SuffixScanOptions options;
  ASSERT_OK_AND_ASSIGN(SuffixScanResult result, scan.Scan(context, options));
  EXPECT_GT(result.stats.classes_enumerated, 0);
  EXPECT_GT(result.stats.candidates_scored, 0);
  EXPECT_EQ(result.stats.index_bytes, scan.index_bytes());
  EXPECT_EQ(result.stats.peak_index_bytes, scan.peak_index_bytes());
}

}  // namespace
}  // namespace core
}  // namespace sigsub
