#include "core/chi_square.h"

#include <vector>

#include "gtest/gtest.h"
#include "seq/generators.h"
#include "seq/prefix_counts.h"
#include "seq/rng.h"
#include "stats/count_statistics.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

TEST(ChiSquareContextTest, MakeValidates) {
  EXPECT_TRUE(ChiSquareContext::Make({0.5, 0.5}).ok());
  EXPECT_TRUE(ChiSquareContext::Make({0.5, 0.6}).status().IsInvalidArgument());
  EXPECT_TRUE(ChiSquareContext::Make({1.0}).status().IsInvalidArgument());
}

TEST(ChiSquareContextTest, EvaluateMatchesReferenceImplementation) {
  ChiSquareContext ctx(seq::MultinomialModel::Make({0.2, 0.3, 0.5}).value());
  std::vector<int64_t> counts{7, 2, 11};
  std::vector<double> probs{0.2, 0.3, 0.5};
  EXPECT_X2_EQ(ctx.Evaluate(counts, 20),
               stats::PearsonChiSquare(counts, probs));
}

TEST(ChiSquareContextTest, EvaluateCoinExample) {
  ChiSquareContext ctx(seq::MultinomialModel::Uniform(2));
  std::vector<int64_t> counts{19, 1};
  EXPECT_NEAR(ctx.Evaluate(counts, 20), 16.2, 1e-10);
}

TEST(ChiSquareContextTest, EmptyLengthIsZero) {
  ChiSquareContext ctx(seq::MultinomialModel::Uniform(2));
  std::vector<int64_t> counts{0, 0};
  EXPECT_DOUBLE_EQ(ctx.Evaluate(counts, 0), 0.0);
}

TEST(ChiSquareContextTest, SingleCharacterValue) {
  // X² of one character c is 1/p_c − 1.
  ChiSquareContext ctx(seq::MultinomialModel::Make({0.25, 0.75}).value());
  std::vector<int64_t> c0{1, 0};
  std::vector<int64_t> c1{0, 1};
  EXPECT_NEAR(ctx.Evaluate(c0, 1), 3.0, 1e-12);
  EXPECT_NEAR(ctx.Evaluate(c1, 1), 1.0 / 3.0, 1e-12);
}

TEST(ChiSquareContextTest, EvaluateRangeMatchesEvaluate) {
  seq::Rng rng(42);
  seq::Sequence s = seq::GenerateNull(3, 200, rng);
  seq::PrefixCounts pc(s);
  ChiSquareContext ctx(seq::MultinomialModel::Uniform(3));
  std::vector<int64_t> counts(3);
  for (int64_t start = 0; start < s.size(); start += 11) {
    for (int64_t end = start + 1; end <= s.size(); end += 7) {
      pc.FillCounts(start, end, counts);
      EXPECT_X2_EQ(ctx.EvaluateRange(pc, start, end),
                   ctx.Evaluate(counts, end - start));
    }
  }
}

TEST(ChiSquareContextIncrementalTest, TracksDirectEvaluation) {
  seq::Rng rng(77);
  for (int k : {2, 5}) {
    seq::MultinomialModel model = seq::MultinomialModel::Harmonic(k);
    seq::Sequence s = seq::GenerateMultinomial(model, 500, rng);
    ChiSquareContext ctx(model);
    ChiSquareContext::Incremental inc(ctx);
    std::vector<int64_t> counts(k, 0);
    for (int64_t i = 0; i < s.size(); ++i) {
      inc.Extend(s[i]);
      ++counts[s[i]];
      ASSERT_NEAR(inc.chi_square(), ctx.Evaluate(counts, i + 1),
                  1e-7 * (1.0 + inc.chi_square()))
          << "k=" << k << " i=" << i;
    }
  }
}

TEST(ChiSquareContextIncrementalTest, ResetClearsState) {
  ChiSquareContext ctx(seq::MultinomialModel::Uniform(2));
  ChiSquareContext::Incremental inc(ctx);
  inc.Extend(0);
  inc.Extend(0);
  EXPECT_GT(inc.chi_square(), 0.0);
  inc.Reset();
  EXPECT_EQ(inc.length(), 0);
  EXPECT_DOUBLE_EQ(inc.chi_square(), 0.0);
  inc.Extend(1);
  EXPECT_NEAR(inc.chi_square(), 1.0, 1e-12);
}

TEST(ChiSquareContextTest, OrderIndependenceViaCounts) {
  // The statistic depends only on counts (paper remark after Eq. 5):
  // two different orderings with the same counts score identically.
  ChiSquareContext ctx(seq::MultinomialModel::Uniform(2));
  ChiSquareContext::Incremental a(ctx);
  ChiSquareContext::Incremental b(ctx);
  for (uint8_t sym : {0, 0, 1, 0, 1, 1, 0}) a.Extend(sym);
  for (uint8_t sym : {1, 1, 1, 0, 0, 0, 0}) b.Extend(sym);
  EXPECT_DOUBLE_EQ(a.chi_square(), b.chi_square());
}

TEST(ChiSquareContextTest, LargeCountsStayFinite) {
  ChiSquareContext ctx(seq::MultinomialModel::Uniform(2));
  std::vector<int64_t> counts{90000, 10000};
  double x2 = ctx.Evaluate(counts, 100000);
  EXPECT_TRUE(std::isfinite(x2));
  // X² = n(2p̂−1)² / (p(1−p)) ... = (90000−50000)²/50000 × 2 = 64000.
  EXPECT_NEAR(x2, 64000.0, 1e-6);
}

}  // namespace
}  // namespace core
}  // namespace sigsub
