// Property tests for the fused X² range kernels (core/x2_kernel.h):
//
//   * the fused scalar path is BIT-identical to the legacy
//     FillCounts + Evaluate scratch round-trip (same operation order);
//   * the SIMD path (when available) agrees with scalar to <= 1e-12
//     relative and selects the same argmax over exhaustive scans of
//     adversarial near-tie sequences;
//   * both agree with a naive O(l) recount of the substring;
//   * the batched EvaluateEnds and grid EvaluateRect forms match their
//     one-shot counterparts;
//   * the SkipSolver block overload reproduces the span overload.

#include "core/x2_kernel.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "core/chain_cover.h"
#include "seq/generators.h"
#include "seq/model.h"
#include "seq/rng.h"
#include "seq/sequence.h"
#include "testing/test_util.h"

namespace sigsub {
namespace core {
namespace {

constexpr int kAlphabets[] = {2, 3, 4, 8, 26};

/// A non-uniform model with deterministic pseudo-random probabilities.
seq::MultinomialModel MakeModel(int k, uint64_t seed) {
  seq::Rng rng(seed);
  std::vector<double> probs(static_cast<size_t>(k));
  double total = 0.0;
  for (double& p : probs) {
    p = 0.05 + rng.NextDouble();
    total += p;
  }
  for (double& p : probs) p /= total;
  auto model = seq::MultinomialModel::Make(std::move(probs));
  SIGSUB_CHECK(model.ok());
  return std::move(model).value();
}

/// Deterministic query ranges over [0, n], biased toward short substrings
/// the way a skip scan is.
std::vector<std::pair<int64_t, int64_t>> MakeRanges(int64_t n, size_t count,
                                                    uint64_t seed) {
  std::vector<std::pair<int64_t, int64_t>> ranges;
  seq::Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    auto a = static_cast<int64_t>(rng.NextDouble() * static_cast<double>(n));
    auto b = static_cast<int64_t>(rng.NextDouble() * static_cast<double>(n));
    if (a > b) std::swap(a, b);
    ranges.emplace_back(a, b + 1 > n ? n : b + 1);
  }
  return ranges;
}

/// O(l) recount straight off the symbols — independent of PrefixCounts.
double NaiveX2(const seq::Sequence& sequence, const ChiSquareContext& ctx,
               int64_t start, int64_t end) {
  std::vector<int64_t> counts(static_cast<size_t>(ctx.alphabet_size()), 0);
  for (int64_t i = start; i < end; ++i) {
    ++counts[sequence[i]];
  }
  return ctx.Evaluate(counts, end - start);
}

TEST(X2KernelTest, ScalarBitIdenticalToLegacyPair) {
  for (int k : kAlphabets) {
    seq::Rng rng(1000 + static_cast<uint64_t>(k));
    seq::Sequence s = seq::GenerateNull(k, 2048, rng);
    seq::PrefixCounts counts(s);
    ChiSquareContext ctx(MakeModel(k, 7 * static_cast<uint64_t>(k)),
                         X2Dispatch::kScalar);
    X2Kernel kernel(ctx, X2Dispatch::kScalar);
    ASSERT_FALSE(kernel.simd_active());
    std::vector<int64_t> scratch(static_cast<size_t>(k));
    for (const auto& [start, end] : MakeRanges(s.size(), 4000, 99)) {
      counts.FillCounts(start, end, scratch);
      double legacy = ctx.Evaluate(scratch, end - start);
      double fused = kernel.EvaluateRange(counts, start, end);
      // Bit identity, not a tolerance: same loads, same operation order.
      ASSERT_EQ(legacy, fused) << "k=" << k << " [" << start << "," << end
                               << ")";
    }
  }
}

TEST(X2KernelTest, AllPathsMatchNaiveRecount) {
  for (int k : kAlphabets) {
    seq::Rng rng(2000 + static_cast<uint64_t>(k));
    seq::Sequence s = seq::GenerateNull(k, 512, rng);
    seq::PrefixCounts counts(s);
    ChiSquareContext ctx(MakeModel(k, 11 * static_cast<uint64_t>(k)));
    X2Kernel scalar(ctx, X2Dispatch::kScalar);
    X2Kernel simd(ctx, X2Dispatch::kSimd);
    for (const auto& [start, end] : MakeRanges(s.size(), 800, 17)) {
      double naive = NaiveX2(s, ctx, start, end);
      EXPECT_X2_EQ(scalar.EvaluateRange(counts, start, end), naive);
      EXPECT_X2_EQ(simd.EvaluateRange(counts, start, end), naive);
    }
  }
}

TEST(X2KernelTest, SimdWithinRelativeToleranceOfScalar) {
  if (!SimdAvailable()) {
    GTEST_SKIP() << "SIMD kernel not available on this build/CPU";
  }
  for (int k : kAlphabets) {
    seq::Rng rng(3000 + static_cast<uint64_t>(k));
    seq::Sequence s = seq::GenerateNull(k, 2048, rng);
    seq::PrefixCounts counts(s);
    ChiSquareContext ctx(MakeModel(k, 13 * static_cast<uint64_t>(k)));
    X2Kernel scalar(ctx, X2Dispatch::kScalar);
    X2Kernel simd(ctx, X2Dispatch::kSimd);
    ASSERT_TRUE(simd.simd_active()) << "k=" << k;
    for (const auto& [start, end] : MakeRanges(s.size(), 4000, 23)) {
      double a = scalar.EvaluateRange(counts, start, end);
      double b = simd.EvaluateRange(counts, start, end);
      EXPECT_NEAR(a, b, 1e-12 * (1.0 + std::fabs(a)))
          << "k=" << k << " [" << start << "," << end << ")";
    }
  }
}

/// Adversarial near-tie inputs: periodic strings make whole equivalence
/// classes of substrings score exactly equal, so any evaluation-order
/// instability in a kernel would flip the (first-wins) argmax.
seq::Sequence MakePeriodic(int k, int64_t n, int64_t period) {
  std::vector<uint8_t> symbols(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    symbols[static_cast<size_t>(i)] =
        static_cast<uint8_t>((i / period) % k);
  }
  auto s = seq::Sequence::FromSymbols(k, std::move(symbols));
  SIGSUB_CHECK(s.ok());
  return std::move(s).value();
}

TEST(X2KernelTest, SimdArgmaxIdentityOnNearTieSequences) {
  if (!SimdAvailable()) {
    GTEST_SKIP() << "SIMD kernel not available on this build/CPU";
  }
  for (int k : {2, 4, 8}) {
    for (int64_t period : {1, 2, 3}) {
      seq::Sequence s = MakePeriodic(k, 192, period);
      seq::PrefixCounts counts(s);
      ChiSquareContext ctx(seq::MultinomialModel::Uniform(k));
      X2Kernel scalar(ctx, X2Dispatch::kScalar);
      X2Kernel simd(ctx, X2Dispatch::kSimd);
      // Exhaustive scan in a fixed order, strict-greater argmax.
      int64_t best_start_a = 0, best_end_a = 0;
      int64_t best_start_b = 0, best_end_b = 0;
      double best_a = -1.0, best_b = -1.0;
      for (int64_t i = 0; i < s.size(); ++i) {
        for (int64_t end = i + 1; end <= s.size(); ++end) {
          double a = scalar.EvaluateRange(counts, i, end);
          double b = simd.EvaluateRange(counts, i, end);
          if (a > best_a) {
            best_a = a;
            best_start_a = i;
            best_end_a = end;
          }
          if (b > best_b) {
            best_b = b;
            best_start_b = i;
            best_end_b = end;
          }
        }
      }
      EXPECT_EQ(best_start_a, best_start_b)
          << "k=" << k << " period=" << period;
      EXPECT_EQ(best_end_a, best_end_b) << "k=" << k << " period=" << period;
      EXPECT_NEAR(best_a, best_b, 1e-12 * (1.0 + best_a));
    }
  }
}

TEST(X2KernelTest, EvaluateEndsMatchesEvaluateRange) {
  for (int k : {2, 4, 26}) {
    seq::Rng rng(4000 + static_cast<uint64_t>(k));
    seq::Sequence s = seq::GenerateNull(k, 300, rng);
    seq::PrefixCounts counts(s);
    ChiSquareContext ctx(MakeModel(k, 5 * static_cast<uint64_t>(k)));
    X2Kernel kernel(ctx);
    std::vector<int64_t> ends;
    for (int64_t e = 10; e <= s.size(); e += 7) ends.push_back(e);
    std::vector<double> out(ends.size());
    kernel.EvaluateEnds(counts, /*start=*/10, ends, out);
    for (size_t i = 0; i < ends.size(); ++i) {
      EXPECT_EQ(out[i], kernel.EvaluateRange(counts, 10, ends[i]));
    }
    EXPECT_EQ(out[0], 0.0);  // ends[0] == start.
  }
}

TEST(X2KernelTest, EvaluateRectMatchesGridLegacyPair) {
  seq::Rng rng(77);
  auto model = seq::MultinomialModel::Uniform(4);
  seq::Grid grid = seq::Grid::GenerateNull(model, 12, 17, rng);
  seq::GridPrefixCounts counts(grid);
  ChiSquareContext ctx(model, X2Dispatch::kScalar);
  X2Kernel kernel(ctx, X2Dispatch::kScalar);
  std::vector<int64_t> scratch(4);
  for (int64_t r0 = 0; r0 < grid.rows(); r0 += 3) {
    for (int64_t r1 = r0 + 1; r1 <= grid.rows(); r1 += 2) {
      for (int64_t c0 = 0; c0 < grid.cols(); c0 += 3) {
        for (int64_t c1 = c0 + 1; c1 <= grid.cols(); c1 += 2) {
          counts.FillCounts(r0, r1, c0, c1, scratch);
          double legacy = ctx.Evaluate(scratch, (r1 - r0) * (c1 - c0));
          EXPECT_EQ(legacy, kernel.EvaluateRect(counts, r0, r1, c0, c1));
        }
      }
    }
  }
}

TEST(X2KernelTest, SkipSolverBlockOverloadMatchesSpanOverload) {
  for (int k : {2, 4, 8}) {
    seq::Rng rng(5000 + static_cast<uint64_t>(k));
    seq::Sequence s = seq::GenerateNull(k, 600, rng);
    seq::PrefixCounts counts(s);
    ChiSquareContext ctx(MakeModel(k, 3 * static_cast<uint64_t>(k)));
    SkipSolver solver(ctx);
    X2Kernel kernel(ctx, X2Dispatch::kScalar);
    std::vector<int64_t> scratch(static_cast<size_t>(k));
    for (const auto& [start, end] : MakeRanges(s.size(), 500, 31)) {
      if (end == start) continue;
      int64_t l = end - start;
      counts.FillCounts(start, end, scratch);
      double x2 = ctx.Evaluate(scratch, l);
      for (double budget : {x2 - 1.0, x2, x2 + 1.0, x2 + 25.0}) {
        EXPECT_EQ(solver.MaxSafeExtension(scratch, l, x2, budget),
                  solver.MaxSafeExtension(counts.BlockAt(start),
                                          counts.BlockAt(end), l, x2,
                                          budget))
            << "k=" << k << " [" << start << "," << end << ") budget "
            << budget;
      }
    }
  }
}

TEST(X2DispatchTest, ParseAndNameRoundTrip) {
  X2Dispatch dispatch = X2Dispatch::kAuto;
  EXPECT_TRUE(ParseX2Dispatch("scalar", &dispatch));
  EXPECT_EQ(dispatch, X2Dispatch::kScalar);
  EXPECT_TRUE(ParseX2Dispatch("simd", &dispatch));
  EXPECT_EQ(dispatch, X2Dispatch::kSimd);
  EXPECT_TRUE(ParseX2Dispatch("auto", &dispatch));
  EXPECT_EQ(dispatch, X2Dispatch::kAuto);
  EXPECT_FALSE(ParseX2Dispatch("avx512", &dispatch));
  EXPECT_STREQ(X2DispatchName(X2Dispatch::kScalar), "scalar");
  EXPECT_STREQ(X2DispatchName(X2Dispatch::kSimd), "simd");
  EXPECT_STREQ(X2DispatchName(X2Dispatch::kAuto), "auto");
}

TEST(X2DispatchTest, ContextResolvesDispatchAtBuildTime) {
  // Scalar contexts never report SIMD; SIMD contexts report it exactly
  // when the build/CPU support it (k >= 4 under auto).
  ChiSquareContext scalar(seq::MultinomialModel::Uniform(8),
                          X2Dispatch::kScalar);
  EXPECT_FALSE(scalar.x2_simd_active());
  ChiSquareContext simd(seq::MultinomialModel::Uniform(8),
                        X2Dispatch::kSimd);
  EXPECT_EQ(simd.x2_simd_active(), SimdAvailable());
  ChiSquareContext auto_small(seq::MultinomialModel::Uniform(2));
  EXPECT_FALSE(auto_small.x2_simd_active());  // k < 4 stays scalar.

  // The process default governs kAuto contexts; restore it afterwards.
  SetDefaultX2Dispatch(X2Dispatch::kScalar);
  ChiSquareContext pinned(seq::MultinomialModel::Uniform(8));
  EXPECT_FALSE(pinned.x2_simd_active());
  SetDefaultX2Dispatch(X2Dispatch::kAuto);
  ChiSquareContext unpinned(seq::MultinomialModel::Uniform(8));
  EXPECT_EQ(unpinned.x2_simd_active(), SimdAvailable());
}

}  // namespace
}  // namespace core
}  // namespace sigsub
