#ifndef SIGSUB_TESTS_TESTING_TEST_UTIL_H_
#define SIGSUB_TESTS_TESTING_TEST_UTIL_H_

#include <cmath>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "common/result.h"  // SIGSUB_MACRO_CONCAT_ for ASSERT_OK_AND_ASSIGN.
#include "seq/generators.h"
#include "seq/model.h"
#include "seq/rng.h"
#include "seq/sequence.h"

namespace sigsub {
namespace testing {

/// Relative/absolute tolerance for comparing X² values produced by
/// different (equally valid) summation orders.
inline constexpr double kChiTol = 1e-7;

/// EXPECT that two X² values agree up to accumulated rounding.
#define EXPECT_X2_EQ(a, b) \
  EXPECT_NEAR((a), (b), ::sigsub::testing::kChiTol * (1.0 + std::fabs(b)))

#define ASSERT_OK(expr)                                 \
  do {                                                  \
    const auto& _st = (expr);                           \
    ASSERT_TRUE(_st.ok()) << _st.ToString();            \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr) \
  ASSERT_OK_AND_ASSIGN_IMPL_(            \
      SIGSUB_MACRO_CONCAT_(_res_, __LINE__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  ASSERT_TRUE(result.ok()) << result.status().ToString(); \
  lhs = std::move(result).value()

/// A named string family used by parameterized equivalence sweeps.
enum class Family {
  kNull,       // Uniform multinomial.
  kGeometric,  // p_i ∝ 2^{-i}.
  kHarmonic,   // p_i ∝ 1/i.
  kMarkov,     // Paper's Markov family, scored under a uniform null.
  kBiased,     // Biased binary RNG (k = 2 only), scored under uniform null.
};

inline std::string FamilyName(Family family) {
  switch (family) {
    case Family::kNull:
      return "Null";
    case Family::kGeometric:
      return "Geometric";
    case Family::kHarmonic:
      return "Harmonic";
    case Family::kMarkov:
      return "Markov";
    case Family::kBiased:
      return "Biased";
  }
  return "Unknown";
}

/// The null model used to *score* strings of the family (the generating
/// process may differ, e.g. Markov strings scored under a uniform null —
/// exactly the paper's Section 7.1.2 setup).
inline seq::MultinomialModel ScoringModel(Family family, int k) {
  switch (family) {
    case Family::kGeometric:
      return seq::MultinomialModel::Geometric(k);
    case Family::kHarmonic:
      return seq::MultinomialModel::Harmonic(k);
    default:
      return seq::MultinomialModel::Uniform(k);
  }
}

/// Generates a string of the family.
inline seq::Sequence GenerateFamily(Family family, int k, int64_t n,
                                    seq::Rng& rng) {
  switch (family) {
    case Family::kNull:
      return seq::GenerateNull(k, n, rng);
    case Family::kGeometric:
      return seq::GenerateMultinomial(seq::MultinomialModel::Geometric(k), n,
                                      rng);
    case Family::kHarmonic:
      return seq::GenerateMultinomial(seq::MultinomialModel::Harmonic(k), n,
                                      rng);
    case Family::kMarkov:
      return seq::GenerateMarkov(seq::MarkovModel::PaperFamily(k), n, rng);
    case Family::kBiased:
      return seq::GenerateBiasedBinary(0.7, n, rng);
  }
  return seq::GenerateNull(k, n, rng);
}

}  // namespace testing
}  // namespace sigsub

#endif  // SIGSUB_TESTS_TESTING_TEST_UTIL_H_
