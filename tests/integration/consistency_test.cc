// Randomized cross-variant consistency battery: for seeded random inputs
// spanning regime-switching strings and skewed models, every algorithm
// variant in the library must tell the same story about the same string.
// Also checks metamorphic invariances of the statistic (reversal, symbol
// relabeling) end-to-end through the scans.

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "sigsub.h"
#include "testing/test_util.h"

namespace sigsub {
namespace {

struct RandomCase {
  seq::Sequence sequence;
  seq::MultinomialModel model;
};

// Builds a deterministic "anything goes" instance: 1-4 regimes, k in 2..5,
// and a scoring model that may differ from the generator.
RandomCase MakeRandomCase(uint64_t seed) {
  seq::Rng rng(seed);
  int k = 2 + static_cast<int>(rng.NextBounded(4));
  int regime_count = 1 + static_cast<int>(rng.NextBounded(4));
  std::vector<seq::Regime> regimes;
  for (int i = 0; i < regime_count; ++i) {
    seq::Regime regime;
    regime.length = 20 + static_cast<int64_t>(rng.NextBounded(300));
    std::vector<double> probs(k);
    double total = 0.0;
    for (int c = 0; c < k; ++c) {
      probs[c] = 0.05 + rng.NextDouble();
      total += probs[c];
    }
    for (double& p : probs) p /= total;
    regime.probs = probs;
    regimes.push_back(std::move(regime));
  }
  auto sequence = seq::GenerateRegimes(k, regimes, rng);
  SIGSUB_CHECK(sequence.ok());
  // Scoring model: uniform half the time, random otherwise.
  if (rng.NextBernoulli(0.5)) {
    return RandomCase{std::move(sequence).value(),
                      seq::MultinomialModel::Uniform(k)};
  }
  std::vector<double> probs(k);
  double total = 0.0;
  for (int c = 0; c < k; ++c) {
    probs[c] = 0.05 + rng.NextDouble();
    total += probs[c];
  }
  for (double& p : probs) p /= total;
  return RandomCase{std::move(sequence).value(),
                    seq::MultinomialModel::Make(std::move(probs)).value()};
}

class ConsistencyFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConsistencyFuzz, AllVariantsAgree) {
  RandomCase c = MakeRandomCase(GetParam());
  const seq::Sequence& s = c.sequence;
  const seq::MultinomialModel& model = c.model;

  auto exact = core::NaiveFindMss(s, model);
  ASSERT_TRUE(exact.ok());
  const double optimum = exact->best.chi_square;

  auto fast = core::FindMss(s, model);
  ASSERT_TRUE(fast.ok());
  EXPECT_X2_EQ(fast->best.chi_square, optimum);

  auto parallel = core::FindMssParallel(s, model, 3);
  ASSERT_TRUE(parallel.ok());
  EXPECT_X2_EQ(parallel->best.chi_square, optimum);

  auto blocked = core::FindMssBlocked(s, model, 17);
  ASSERT_TRUE(blocked.ok());
  EXPECT_X2_EQ(blocked->best.chi_square, optimum);

  auto bounded = core::FindMssLengthBounded(s, model, 1, s.size());
  ASSERT_TRUE(bounded.ok());
  EXPECT_X2_EQ(bounded->best.chi_square, optimum);

  auto min_length = core::FindMssMinLength(s, model, 1);
  ASSERT_TRUE(min_length.ok());
  EXPECT_X2_EQ(min_length->best.chi_square, optimum);

  auto top = core::FindTopT(s, model, 3);
  ASSERT_TRUE(top.ok());
  ASSERT_FALSE(top->top.empty());
  EXPECT_X2_EQ(top->top[0].chi_square, optimum);

  // Heuristics are valid lower bounds.
  auto arlm = core::FindMssArlm(s, model);
  auto agmm = core::FindMssAgmm(s, model);
  ASSERT_TRUE(arlm.ok());
  ASSERT_TRUE(agmm.ok());
  EXPECT_LE(arlm->best.chi_square, optimum + 1e-7 * (1.0 + optimum));
  EXPECT_LE(agmm->best.chi_square, optimum + 1e-7 * (1.0 + optimum));

  // The threshold scan just below the optimum must find it.
  double alpha0 = optimum * (1.0 - 1e-9) - 1e-9;
  if (alpha0 > 0.0) {
    auto above = core::FindAboveThreshold(s, model, alpha0);
    ASSERT_TRUE(above.ok());
    EXPECT_GE(above->match_count, 1);
    EXPECT_X2_EQ(above->best.chi_square, optimum);
  }
}

TEST_P(ConsistencyFuzz, ReversalInvariance) {
  // X² depends only on counts, so reversing the string preserves the
  // substring-score multiset — in particular the maximum.
  RandomCase c = MakeRandomCase(GetParam() ^ 0xabcdef);
  std::vector<uint8_t> reversed(c.sequence.symbols().begin(),
                                c.sequence.symbols().end());
  std::reverse(reversed.begin(), reversed.end());
  seq::Sequence r =
      seq::Sequence::FromSymbols(c.sequence.alphabet_size(), reversed)
          .value();
  auto forward = core::FindMss(c.sequence, c.model);
  auto backward = core::FindMss(r, c.model);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  EXPECT_X2_EQ(forward->best.chi_square, backward->best.chi_square);
  // The winning windows mirror each other (up to ties).
  EXPECT_EQ(forward->best.length(), backward->best.length());
}

TEST_P(ConsistencyFuzz, RelabelingInvarianceUnderUniformModel) {
  // Under a uniform model, permuting symbol identities cannot change any
  // substring's X².
  RandomCase c = MakeRandomCase(GetParam() ^ 0x123456);
  const int k = c.sequence.alphabet_size();
  auto uniform = seq::MultinomialModel::Uniform(k);
  std::vector<uint8_t> relabeled(c.sequence.symbols().begin(),
                                 c.sequence.symbols().end());
  for (auto& symbol : relabeled) {
    symbol = static_cast<uint8_t>((symbol + 1) % k);
  }
  seq::Sequence rotated = seq::Sequence::FromSymbols(k, relabeled).value();
  auto original = core::FindMss(c.sequence, uniform);
  auto permuted = core::FindMss(rotated, uniform);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(permuted.ok());
  EXPECT_X2_EQ(original->best.chi_square, permuted->best.chi_square);
  EXPECT_EQ(original->best.start, permuted->best.start);
  EXPECT_EQ(original->best.end, permuted->best.end);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyFuzz,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace sigsub
