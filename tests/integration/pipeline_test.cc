// Cross-module integration tests: generator -> algorithms -> significance,
// exercising the same pipelines the examples and benchmarks use.

#include <algorithm>
#include <cmath>

#include "gtest/gtest.h"
#include "sigsub.h"
#include "testing/test_util.h"

namespace sigsub {
namespace {

TEST(PipelineTest, CryptologyRngAuditDetectsBias) {
  // Paper Section 7.4 / Table 2: X²_max of a biased binary RNG stream grows
  // with the same-symbol probability p. Audit three streams and check the
  // ordering and the benchmark property X²_max(p=0.5) ~ 2 ln n.
  const int64_t n = 20000;
  auto model = seq::MultinomialModel::Uniform(2);
  double prev = 0.0;
  for (double p : {0.5, 0.6, 0.8}) {
    seq::Rng rng(9000 + static_cast<uint64_t>(p * 100));
    seq::Sequence stream = seq::GenerateBiasedBinary(p, n, rng);
    auto mss = core::FindMss(stream, model);
    ASSERT_TRUE(mss.ok());
    EXPECT_GT(mss->best.chi_square, prev) << "p=" << p;
    prev = mss->best.chi_square;
  }
  // The unbiased stream's X²_max should be within a factor ~2.5 of 2 ln n.
  seq::Rng rng(1234);
  seq::Sequence fair = seq::GenerateBiasedBinary(0.5, n, rng);
  auto mss = core::FindMss(fair, model);
  ASSERT_TRUE(mss.ok());
  double benchmark = 2.0 * std::log(static_cast<double>(n));
  EXPECT_GT(mss->best.chi_square, benchmark / 2.5);
  EXPECT_LT(mss->best.chi_square, benchmark * 2.5);
}

TEST(PipelineTest, IntrusionDetectionViaThreshold) {
  // Event stream (k = 4) with a planted burst of one event type; the
  // threshold variant at a p-value-derived alpha0 must flag substrings
  // overlapping the burst and nothing before the burst's scale.
  seq::Rng rng(555);
  auto stream = seq::GenerateRegimes(
      4,
      {{3000, {0.25, 0.25, 0.25, 0.25}},
       {120, {0.7, 0.1, 0.1, 0.1}},
       {3000, {0.25, 0.25, 0.25, 0.25}}},
      rng);
  ASSERT_TRUE(stream.ok());
  auto model = seq::MultinomialModel::Uniform(4);
  // Bonferroni-style conservative threshold over ~n²/2 substrings.
  double n2 = 6120.0 * 6120.0 / 2.0;
  double alpha0 = stats::ChiSquareThresholdForPValue(0.001 / n2, 4);
  auto result = core::FindAboveThreshold(stream.value(), model, alpha0);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->match_count, 0);
  // Every match overlaps the planted burst [3000, 3120).
  for (const auto& match : result->matches) {
    EXPECT_LT(match.start, 3120);
    EXPECT_GT(match.end, 3000);
  }
}

TEST(PipelineTest, SportsTopDisjointRecoversErasInOrder) {
  io::RivalrySeries series = io::RivalrySeries::Default();
  double p = series.EmpiricalWinRate();
  auto model = seq::MultinomialModel::Make({1.0 - p, p}).value();
  core::TopDisjointOptions options;
  options.t = 5;
  options.min_length = 10;
  auto patches = core::FindTopDisjoint(series.outcomes(), model, options);
  ASSERT_TRUE(patches.ok());
  ASSERT_EQ(patches->size(), 5u);
  // The strong planted eras must be recovered. The weakest eras sit near
  // the null-noise X² level (exactly like the paper's marginal fifth
  // patch, X² = 12.05), so we require the two dominant eras with majority
  // overlap and at least 3 of 5 eras hit overall.
  auto overlap_of = [&](const io::PlantedEra& era) {
    int64_t lo = era.start_game;
    int64_t hi = era.start_game + era.num_games;
    int64_t best_overlap = 0;
    for (const auto& patch : *patches) {
      best_overlap = std::max(
          best_overlap, std::min(patch.end, hi) - std::max(patch.start, lo));
    }
    return best_overlap;
  };
  int recovered = 0;
  for (const auto& era : series.config().eras) {
    if (overlap_of(era) > era.num_games / 3) ++recovered;
    // Dominant eras: the 204-game dynasty and the 39-game glory period.
    if (era.num_games >= 39 && era.num_games != 42) {
      EXPECT_GT(overlap_of(era), era.num_games / 2) << era.label;
    }
  }
  EXPECT_GE(recovered, 3);
}

TEST(PipelineTest, MarketSeriesFastMatchesNaiveOnPrefix) {
  // Exactness on real(istic) application data, not just synthetic nulls:
  // compare against the O(n²) oracle on a 3000-day prefix of the IBM
  // series.
  io::MarketSeries ibm = io::MarketSeries::Ibm();
  std::vector<uint8_t> prefix;
  for (int64_t i = 0; i < 3000; ++i) prefix.push_back(ibm.updown()[i]);
  seq::Sequence s = seq::Sequence::FromSymbols(2, prefix).value();
  double p = ibm.EmpiricalUpRate();
  auto model = seq::MultinomialModel::Make({1.0 - p, p}).value();
  auto fast = core::FindMss(s, model);
  auto slow = core::NaiveFindMss(s, model);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_X2_EQ(fast->best.chi_square, slow->best.chi_square);
}

TEST(PipelineTest, AllFourAlgorithmsAgreeOnWhoWins) {
  // Table 1/4/6 shape: Trivial == Our == exact; ARLM close; AGMM <= all.
  seq::Rng rng(987);
  seq::Sequence s = seq::GenerateNull(2, 3000, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  auto ours = core::FindMss(s, model);
  auto trivial = core::NaiveFindMss(s, model);
  auto blocked = core::FindMssBlocked(s, model);
  auto arlm = core::FindMssArlm(s, model);
  auto agmm = core::FindMssAgmm(s, model);
  ASSERT_TRUE(ours.ok());
  ASSERT_TRUE(trivial.ok());
  ASSERT_TRUE(blocked.ok());
  ASSERT_TRUE(arlm.ok());
  ASSERT_TRUE(agmm.ok());
  EXPECT_X2_EQ(ours->best.chi_square, trivial->best.chi_square);
  EXPECT_X2_EQ(blocked->best.chi_square, trivial->best.chi_square);
  EXPECT_LE(arlm->best.chi_square, trivial->best.chi_square + 1e-9);
  EXPECT_LE(agmm->best.chi_square, arlm->best.chi_square + 1e-9);
}

TEST(PipelineTest, PValueAnnotationFlagsPlantedAnomalyOnly) {
  seq::Rng rng(31415);
  auto s = seq::GenerateRegimes(
      2, {{5000, {0.5, 0.5}}, {200, {0.85, 0.15}}, {5000, {0.5, 0.5}}}, rng);
  ASSERT_TRUE(s.ok());
  auto model = seq::MultinomialModel::Uniform(2);
  auto mss = core::FindMss(s.value(), model);
  ASSERT_TRUE(mss.ok());
  auto scored = core::ScoreResult(s.value(), model, mss.value());
  ASSERT_TRUE(scored.ok());
  // The planted window is a ~10-sigma event; p-value must be tiny.
  EXPECT_LT(scored->p_value, 1e-12);
  // A pure null string of the same length should NOT reach that level.
  seq::Rng rng2(27182);
  seq::Sequence null_string = seq::GenerateNull(2, 10200, rng2);
  auto null_mss = core::FindMss(null_string, model);
  ASSERT_TRUE(null_mss.ok());
  EXPECT_GT(core::SubstringPValue(null_mss->best.chi_square, 2), 1e-12);
}

TEST(PipelineTest, GrowthOfX2MaxTracksTwoLnN) {
  // Paper Figure 2 / conclusion: E[X²_max] ≈ 2 ln n for null strings.
  // Average over a few seeds at two sizes and check the growth ratio.
  auto model = seq::MultinomialModel::Uniform(2);
  auto mean_x2max = [&](int64_t n, uint64_t seed_base) {
    double total = 0.0;
    for (int trial = 0; trial < 5; ++trial) {
      seq::Rng rng(seed_base + trial);
      seq::Sequence s = seq::GenerateNull(2, n, rng);
      auto mss = core::FindMss(s, model);
      EXPECT_TRUE(mss.ok());
      total += mss->best.chi_square;
    }
    return total / 5.0;
  };
  double at_1k = mean_x2max(1000, 100);
  double at_16k = mean_x2max(16000, 200);
  EXPECT_GT(at_16k, at_1k);
  // Expected difference 2 ln 16 ≈ 5.5; allow generous slack.
  EXPECT_NEAR(at_16k - at_1k, 5.5, 4.5);
}

}  // namespace
}  // namespace sigsub
