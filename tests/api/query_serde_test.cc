#include "api/serde.h"

#include <set>
#include <string>
#include <vector>

#include "api/query.h"
#include "gtest/gtest.h"
#include "testing/test_util.h"

namespace sigsub {
namespace api {
namespace {

/// One spec per kernel variant with non-default values, plus model
/// variants — the round-trip corpus.
std::vector<QuerySpec> RepresentativeSpecs() {
  std::vector<QuerySpec> specs;
  auto add = [&](int64_t seq, ModelSpec model, QueryRequest request) {
    QuerySpec spec;
    spec.sequence_index = seq;
    spec.model = std::move(model);
    spec.request = std::move(request);
    specs.push_back(std::move(spec));
  };
  add(0, ModelSpec::Uniform(), MssQuery{});
  add(3, ModelSpec::Multinomial({0.25, 0.75}), MssQuery{});
  add(1, ModelSpec::Markov({0.9, 0.1, 0.1, 0.9}), MssQuery{});
  add(0, ModelSpec::Markov({0.9, 0.1, 0.1, 0.9}, {0.3, 0.7}), MssQuery{});
  add(2, ModelSpec::Uniform(), TopTQuery{7});
  add(0, ModelSpec::Uniform(), TopDisjointQuery{5, 4, 2.5});
  add(0, ModelSpec::Uniform(), ThresholdQuery{12.5, -1.0, 100});
  add(0, ModelSpec::Uniform(), ThresholdQuery{-1.0, 0.001,
                                              std::numeric_limits<int64_t>::max()});
  add(0, ModelSpec::Uniform(), ThresholdQuery{3.0, 0.01, 50});
  add(4, ModelSpec::Uniform(), MinLengthQuery{64});
  add(0, ModelSpec::Uniform(), LengthBoundedQuery{8, 128});
  add(0, ModelSpec::Uniform(), LengthBoundedQuery{8, 0});
  add(0, ModelSpec::Multinomial({0.5, 0.25, 0.25}), ArlmQuery{});
  add(0, ModelSpec::Uniform(), AgmmQuery{});
  add(0, ModelSpec::Uniform(), BlockedQuery{32});
  // Doubles that need shortest-round-trip printing to survive.
  add(0, ModelSpec::Multinomial({1.0 / 3.0, 2.0 / 3.0}), TopTQuery{2});
  add(0, ModelSpec::Uniform(), ThresholdQuery{-1.0, 1e-12,
                                              std::numeric_limits<int64_t>::max()});
  return specs;
}

TEST(QuerySerdeTest, CompactRoundTripsEveryKernelVariant) {
  for (const QuerySpec& spec : RepresentativeSpecs()) {
    const std::string text = FormatQuery(spec);
    ASSERT_OK_AND_ASSIGN(QuerySpec parsed, ParseQuery(text));
    EXPECT_EQ(parsed, spec) << text;
    // Formatting is canonical: re-serializing the parse is a fixpoint.
    EXPECT_EQ(FormatQuery(parsed), text);
  }
}

TEST(QuerySerdeTest, JsonRoundTripsEveryKernelVariant) {
  for (const QuerySpec& spec : RepresentativeSpecs()) {
    const std::string json = FormatQueryJson(spec);
    ASSERT_OK_AND_ASSIGN(QuerySpec parsed, ParseQuery(json));
    EXPECT_EQ(parsed, spec) << json;
    // Both forms describe the same canonical content.
    EXPECT_EQ(FormatQuery(parsed), FormatQuery(spec));
  }
}

TEST(QuerySerdeTest, KnownSpellings) {
  QuerySpec spec;
  spec.sequence_index = 2;
  spec.request = TopTQuery{5};
  spec.model = ModelSpec::Multinomial({0.25, 0.75});
  EXPECT_EQ(FormatQuery(spec), "topt:seq=2,t=5,model=probs(0.25;0.75)");
  EXPECT_EQ(FormatQueryJson(spec),
            "{\"kind\":\"topt\",\"seq\":2,\"t\":5,"
            "\"model\":{\"kind\":\"multinomial\",\"probs\":[0.25,0.75]}}");
  EXPECT_EQ(CanonicalQueryKey(spec), "topt:t=5,model=probs(0.25;0.75)");
}

TEST(QuerySerdeTest, ParseAcceptsDefaultsAndWhitespace) {
  ASSERT_OK_AND_ASSIGN(QuerySpec bare, ParseQuery("mss"));
  EXPECT_EQ(bare, QuerySpec{});
  ASSERT_OK_AND_ASSIGN(QuerySpec spaced,
                       ParseQuery("  topt: seq = 1 , t = 3 "));
  EXPECT_EQ(spaced.sequence_index, 1);
  EXPECT_EQ(std::get<TopTQuery>(spaced.request).t, 3);
  // Omitted fields keep their defaults.
  ASSERT_OK_AND_ASSIGN(QuerySpec partial, ParseQuery("blocked:seq=2"));
  EXPECT_EQ(std::get<BlockedQuery>(partial.request).block_size, 64);
}

TEST(QuerySerdeTest, MalformedInputsAreNamedErrors) {
  struct Case {
    const char* text;
    const char* needle;  // Must appear in the error message.
  };
  const Case cases[] = {
      {"", "empty query"},
      {"bogus:seq=0", "unknown query kind"},
      {"mss:seq=0,t=3", "no field \"t\""},
      {"topt:t=abc", "expects an integer"},
      {"topt:t=3,t=4", "duplicate query field"},
      {"topt:t", "missing '='"},
      {"threshold:alpha0=1e", "expects a number"},
      {"mss:seq=0,model=probs(0.5;x)", "model.probs"},
      {"mss:seq=0,model=mystery(1)", "unknown model"},
      {"mss:model=probs(0.5;0.5", "missing ')'"},
      {"{\"kind\":\"topt\",\"t\":}", "malformed JSON"},
      {"{\"kind\":\"topt\"", "malformed JSON"},
      {"{\"seq\":0}", "needs a string \"kind\""},
      {"{\"kind\":\"topt\",\"t\":3,\"t\":4}", "duplicate key"},
      {"{\"kind\":\"mss\",\"model\":{\"kind\":\"markov\"}}",
       "needs \"transitions\""},
      {"{\"kind\":\"mss\",\"model\":{\"kind\":\"uniform\",\"probs\":[1]}}",
       "no field \"probs\""},
  };
  for (const Case& c : cases) {
    auto result = ParseQuery(c.text);
    ASSERT_FALSE(result.ok()) << c.text;
    EXPECT_TRUE(result.status().IsInvalidArgument()) << c.text;
    EXPECT_NE(result.status().message().find(c.needle), std::string::npos)
        << c.text << " -> " << result.status().message();
  }
}

TEST(QuerySerdeTest, DistinctCanonicalFormsGetDistinctFingerprints) {
  // Pins the JobParams→canonical-bytes migration: every pair of distinct
  // canonical keys must land on distinct cache fingerprints (64-bit
  // FNV-1a collisions across a small set would indicate a hashing bug,
  // not bad luck).
  std::vector<QuerySpec> specs = RepresentativeSpecs();
  // Parameter tweaks that historically shared a fingerprint under the
  // flat JobParams hashing when the kind ignored them.
  {
    QuerySpec a;
    a.request = ThresholdQuery{5.0, -1.0, std::numeric_limits<int64_t>::max()};
    QuerySpec b;
    b.request = ThresholdQuery{-1.0, 0.5,
                               std::numeric_limits<int64_t>::max()};
    specs.push_back(a);
    specs.push_back(b);  // alpha0=5 vs alpha_p=0.5 must differ.
  }
  std::set<std::string> keys;
  std::set<uint64_t> fingerprints;
  for (const QuerySpec& spec : specs) {
    keys.insert(CanonicalQueryKey(spec));
    fingerprints.insert(FingerprintQuery(spec));
  }
  EXPECT_EQ(keys.size(), fingerprints.size());

  // Every parameter perturbs the fingerprint; the sequence index never
  // does (record identity lives in the sequence fingerprint).
  QuerySpec base;
  base.request = TopTQuery{5};
  QuerySpec other_t = base;
  other_t.request = TopTQuery{6};
  QuerySpec other_seq = base;
  other_seq.sequence_index = 9;
  EXPECT_NE(FingerprintQuery(base), FingerprintQuery(other_t));
  EXPECT_EQ(FingerprintQuery(base), FingerprintQuery(other_seq));

  QuerySpec skewed = base;
  skewed.model = ModelSpec::Multinomial({0.8, 0.2});
  EXPECT_NE(FingerprintQuery(base), FingerprintQuery(skewed));
}

TEST(QuerySerdeTest, EveryKindNameParses) {
  for (QueryKind kind :
       {QueryKind::kMss, QueryKind::kTopT, QueryKind::kTopDisjoint,
        QueryKind::kThreshold, QueryKind::kMinLength,
        QueryKind::kLengthBounded, QueryKind::kArlm, QueryKind::kAgmm,
        QueryKind::kBlocked}) {
    ASSERT_OK_AND_ASSIGN(QueryKind parsed,
                         ParseQueryKind(QueryKindToString(kind)));
    EXPECT_EQ(parsed, kind);
    ASSERT_OK_AND_ASSIGN(QuerySpec spec,
                         ParseQuery(std::string(QueryKindToString(kind))));
    EXPECT_EQ(spec.kind(), kind);
  }
  EXPECT_TRUE(ParseQueryKind("mystery").status().IsInvalidArgument());
}

}  // namespace
}  // namespace api
}  // namespace sigsub
