#include "api/serde.h"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "api/query.h"
#include "gtest/gtest.h"
#include "testing/test_util.h"

namespace sigsub {
namespace api {
namespace {

/// One spec per kernel variant with non-default values, plus model
/// variants — the round-trip corpus.
std::vector<QuerySpec> RepresentativeSpecs() {
  std::vector<QuerySpec> specs;
  auto add = [&](int64_t seq, ModelSpec model, QueryRequest request) {
    QuerySpec spec;
    spec.sequence_index = seq;
    spec.model = std::move(model);
    spec.request = std::move(request);
    specs.push_back(std::move(spec));
  };
  add(0, ModelSpec::Uniform(), MssQuery{});
  add(3, ModelSpec::Multinomial({0.25, 0.75}), MssQuery{});
  add(1, ModelSpec::Markov({0.9, 0.1, 0.1, 0.9}), MssQuery{});
  add(0, ModelSpec::Markov({0.9, 0.1, 0.1, 0.9}, {0.3, 0.7}), MssQuery{});
  add(2, ModelSpec::Uniform(), TopTQuery{7});
  add(0, ModelSpec::Uniform(), TopDisjointQuery{5, 4, 2.5});
  add(0, ModelSpec::Uniform(), ThresholdQuery{12.5, -1.0, 100});
  add(0, ModelSpec::Uniform(), ThresholdQuery{-1.0, 0.001,
                                              std::numeric_limits<int64_t>::max()});
  add(0, ModelSpec::Uniform(), ThresholdQuery{3.0, 0.01, 50});
  add(4, ModelSpec::Uniform(), MinLengthQuery{64});
  add(0, ModelSpec::Uniform(), LengthBoundedQuery{8, 128});
  add(0, ModelSpec::Uniform(), LengthBoundedQuery{8, 0});
  add(0, ModelSpec::Multinomial({0.5, 0.25, 0.25}), ArlmQuery{});
  add(0, ModelSpec::Uniform(), AgmmQuery{});
  add(0, ModelSpec::Uniform(), BlockedQuery{32});
  add(0, ModelSpec::Uniform(), SubstringsQuery{});
  add(2, ModelSpec::Uniform(), SubstringsQuery{0, 2, 16, 1, true, 9.5, -1.0});
  add(0, ModelSpec::Uniform(),
      SubstringsQuery{25, 3, 12, 4, false, -1.0, 0.001});
  add(0, ModelSpec::Markov({0.9, 0.1, 0.1, 0.9}),
      SubstringsQuery{5, 1, 0, 2, true, -1.0, -1.0});
  // Doubles that need shortest-round-trip printing to survive.
  add(0, ModelSpec::Multinomial({1.0 / 3.0, 2.0 / 3.0}), TopTQuery{2});
  add(0, ModelSpec::Uniform(), ThresholdQuery{-1.0, 1e-12,
                                              std::numeric_limits<int64_t>::max()});
  return specs;
}

TEST(QuerySerdeTest, CompactRoundTripsEveryKernelVariant) {
  for (const QuerySpec& spec : RepresentativeSpecs()) {
    const std::string text = FormatQuery(spec);
    ASSERT_OK_AND_ASSIGN(QuerySpec parsed, ParseQuery(text));
    EXPECT_EQ(parsed, spec) << text;
    // Formatting is canonical: re-serializing the parse is a fixpoint.
    EXPECT_EQ(FormatQuery(parsed), text);
  }
}

TEST(QuerySerdeTest, JsonRoundTripsEveryKernelVariant) {
  for (const QuerySpec& spec : RepresentativeSpecs()) {
    const std::string json = FormatQueryJson(spec);
    ASSERT_OK_AND_ASSIGN(QuerySpec parsed, ParseQuery(json));
    EXPECT_EQ(parsed, spec) << json;
    // Both forms describe the same canonical content.
    EXPECT_EQ(FormatQuery(parsed), FormatQuery(spec));
  }
}

TEST(QuerySerdeTest, KnownSpellings) {
  QuerySpec spec;
  spec.sequence_index = 2;
  spec.request = TopTQuery{5};
  spec.model = ModelSpec::Multinomial({0.25, 0.75});
  EXPECT_EQ(FormatQuery(spec), "topt:seq=2,t=5,model=probs(0.25;0.75)");
  EXPECT_EQ(FormatQueryJson(spec),
            "{\"kind\":\"topt\",\"seq\":2,\"t\":5,"
            "\"model\":{\"kind\":\"multinomial\",\"probs\":[0.25,0.75]}}");
  EXPECT_EQ(CanonicalQueryKey(spec), "topt:t=5,model=probs(0.25;0.75)");
}

TEST(QuerySerdeTest, SubstringsKnownSpellings) {
  QuerySpec spec;
  spec.request = SubstringsQuery{};
  EXPECT_EQ(FormatQuery(spec),
            "substrings:seq=0,top=10,min_length=1,max_length=0,min_count=2,"
            "maximal=1,model=uniform");
  EXPECT_EQ(FormatQueryJson(spec),
            "{\"kind\":\"substrings\",\"seq\":0,\"top\":10,\"min_length\":1,"
            "\"max_length\":0,\"min_count\":2,\"maximal\":1,"
            "\"model\":{\"kind\":\"uniform\"}}");
  // Omitted fields keep defaults; the significance gates only appear
  // in the canonical form once set.
  ASSERT_OK_AND_ASSIGN(QuerySpec partial,
                       ParseQuery("substrings:top=3,alpha_p=0.01"));
  const auto& q = std::get<SubstringsQuery>(partial.request);
  EXPECT_EQ(q.top, 3);
  EXPECT_EQ(q.min_count, 2);
  EXPECT_TRUE(q.maximal);
  EXPECT_EQ(q.alpha_p, 0.01);
  EXPECT_EQ(FormatQuery(partial),
            "substrings:seq=0,top=3,min_length=1,max_length=0,min_count=2,"
            "maximal=1,alpha_p=0.01,model=uniform");
}

TEST(QuerySerdeTest, ParseAcceptsDefaultsAndWhitespace) {
  ASSERT_OK_AND_ASSIGN(QuerySpec bare, ParseQuery("mss"));
  EXPECT_EQ(bare, QuerySpec{});
  ASSERT_OK_AND_ASSIGN(QuerySpec spaced,
                       ParseQuery("  topt: seq = 1 , t = 3 "));
  EXPECT_EQ(spaced.sequence_index, 1);
  EXPECT_EQ(std::get<TopTQuery>(spaced.request).t, 3);
  // Omitted fields keep their defaults.
  ASSERT_OK_AND_ASSIGN(QuerySpec partial, ParseQuery("blocked:seq=2"));
  EXPECT_EQ(std::get<BlockedQuery>(partial.request).block_size, 64);
}

TEST(QuerySerdeTest, MalformedInputsAreNamedErrors) {
  struct Case {
    const char* text;
    const char* needle;  // Must appear in the error message.
  };
  const Case cases[] = {
      {"", "empty query"},
      {"bogus:seq=0", "unknown query kind"},
      {"mss:seq=0,t=3", "no field \"t\""},
      {"topt:t=abc", "expects an integer"},
      {"topt:t=3,t=4", "duplicate query field"},
      {"topt:t", "missing '='"},
      {"threshold:alpha0=1e", "expects a number"},
      {"mss:seq=0,model=probs(0.5;x)", "model.probs"},
      {"mss:seq=0,model=mystery(1)", "unknown model"},
      {"mss:model=probs(0.5;0.5", "missing ')'"},
      {"{\"kind\":\"topt\",\"t\":}", "malformed JSON"},
      {"{\"kind\":\"topt\"", "malformed JSON"},
      {"{\"seq\":0}", "needs a string \"kind\""},
      {"{\"kind\":\"topt\",\"t\":3,\"t\":4}", "duplicate key"},
      {"{\"kind\":\"mss\",\"model\":{\"kind\":\"markov\"}}",
       "needs \"transitions\""},
      {"{\"kind\":\"mss\",\"model\":{\"kind\":\"uniform\",\"probs\":[1]}}",
       "no field \"probs\""},
      {"substrings:maximal=2", "maximal must be 0 or 1"},
      {"substrings:maximal=yes", "expects an integer"},
      {"substrings:t=3", "no field \"t\""},
      {"{\"kind\":\"substrings\",\"maximal\":7}", "maximal must be 0 or 1"},
  };
  for (const Case& c : cases) {
    auto result = ParseQuery(c.text);
    ASSERT_FALSE(result.ok()) << c.text;
    EXPECT_TRUE(result.status().IsInvalidArgument()) << c.text;
    EXPECT_NE(result.status().message().find(c.needle), std::string::npos)
        << c.text << " -> " << result.status().message();
  }
}

TEST(QuerySerdeTest, DistinctCanonicalFormsGetDistinctFingerprints) {
  // Pins the JobParams→canonical-bytes migration: every pair of distinct
  // canonical keys must land on distinct cache fingerprints (64-bit
  // FNV-1a collisions across a small set would indicate a hashing bug,
  // not bad luck).
  std::vector<QuerySpec> specs = RepresentativeSpecs();
  // Parameter tweaks that historically shared a fingerprint under the
  // flat JobParams hashing when the kind ignored them.
  {
    QuerySpec a;
    a.request = ThresholdQuery{5.0, -1.0, std::numeric_limits<int64_t>::max()};
    QuerySpec b;
    b.request = ThresholdQuery{-1.0, 0.5,
                               std::numeric_limits<int64_t>::max()};
    specs.push_back(a);
    specs.push_back(b);  // alpha0=5 vs alpha_p=0.5 must differ.
  }
  std::set<std::string> keys;
  std::set<uint64_t> fingerprints;
  for (const QuerySpec& spec : specs) {
    keys.insert(CanonicalQueryKey(spec));
    fingerprints.insert(FingerprintQuery(spec));
  }
  EXPECT_EQ(keys.size(), fingerprints.size());

  // Every parameter perturbs the fingerprint; the sequence index never
  // does (record identity lives in the sequence fingerprint).
  QuerySpec base;
  base.request = TopTQuery{5};
  QuerySpec other_t = base;
  other_t.request = TopTQuery{6};
  QuerySpec other_seq = base;
  other_seq.sequence_index = 9;
  EXPECT_NE(FingerprintQuery(base), FingerprintQuery(other_t));
  EXPECT_EQ(FingerprintQuery(base), FingerprintQuery(other_seq));

  QuerySpec skewed = base;
  skewed.model = ModelSpec::Multinomial({0.8, 0.2});
  EXPECT_NE(FingerprintQuery(base), FingerprintQuery(skewed));
}

TEST(QuerySerdeTest, EveryKindNameParses) {
  for (QueryKind kind :
       {QueryKind::kMss, QueryKind::kTopT, QueryKind::kTopDisjoint,
        QueryKind::kThreshold, QueryKind::kMinLength,
        QueryKind::kLengthBounded, QueryKind::kArlm, QueryKind::kAgmm,
        QueryKind::kBlocked, QueryKind::kSubstrings}) {
    ASSERT_OK_AND_ASSIGN(QueryKind parsed,
                         ParseQueryKind(QueryKindToString(kind)));
    EXPECT_EQ(parsed, kind);
    ASSERT_OK_AND_ASSIGN(QuerySpec spec,
                         ParseQuery(std::string(QueryKindToString(kind))));
    EXPECT_EQ(spec.kind(), kind);
  }
  EXPECT_TRUE(ParseQueryKind("mystery").status().IsInvalidArgument());
}

// ---------------------------------------------------------------------
// Malformed-input regressions mirroring fuzz/serde_fuzz.cc: any byte
// string is either rejected with a status or accepted with all four
// serde invariants holding (text round trip, JSON round trip, canonical
// fixpoint, fingerprint agreement) — never a crash.

void CheckSerdeInvariants(const std::string& input,
                          const std::string& label) {
  auto parsed = ParseQuery(input);
  if (!parsed.ok()) return;
  const std::string canonical = FormatQuery(*parsed);
  auto from_text = ParseQuery(canonical);
  ASSERT_TRUE(from_text.ok()) << label;
  EXPECT_EQ(*from_text, *parsed) << label;
  EXPECT_EQ(FormatQuery(*from_text), canonical) << label;
  auto from_json = ParseQuery(FormatQueryJson(*parsed));
  ASSERT_TRUE(from_json.ok()) << label;
  EXPECT_EQ(*from_json, *parsed) << label;
  EXPECT_EQ(FingerprintQuery(*from_text), FingerprintQuery(*parsed))
      << label;
}

TEST(QuerySerdeMalformedTest, TruncatedSpellingsAreRejectedNotFatal) {
  for (const char* input :
       {"", " ", "mss model=", "topt t=", "threshold x2=",
        "mss model=multinomial(", "mss model=multinomial(0.5;",
        "{", "{\"kind\"", "{\"kind\":", "{\"kind\":\"mss\"",
        "{\"kind\":\"mss\",\"model\":{", "minlen l="}) {
    CheckSerdeInvariants(input, input);
  }
}

TEST(QuerySerdeMalformedTest, OverlongFieldsAreRejectedNotFatal) {
  std::string many_probs = "mss model=multinomial(";
  for (int i = 0; i < 2000; ++i) many_probs += "0.0005;";
  many_probs.back() = ')';
  CheckSerdeInvariants(many_probs, "2000 probs");
  CheckSerdeInvariants("topt t=" + std::string(400, '9'), "huge t");
  CheckSerdeInvariants(
      "threshold x2=1e" + std::string(64, '9'), "huge exponent");
  CheckSerdeInvariants(std::string(1 << 16, 'm'), "64KiB of m");
}

TEST(QuerySerdeMalformedTest, NonUtf8BytesAreRejectedNotFatal) {
  const std::string raw{"mss \xff\xfe model=\x80uniform\x00()", 24};
  CheckSerdeInvariants(raw, "embedded non-UTF-8");
  EXPECT_FALSE(ParseQuery(raw).ok());
}

TEST(QuerySerdeMalformedTest, NestedParenAbuseTerminates) {
  std::string bomb = "mss model=";
  for (int i = 0; i < 128; ++i) bomb += "markov(";
  CheckSerdeInvariants(bomb, "unclosed markov nest");
  EXPECT_FALSE(ParseQuery(bomb).ok());
  std::string json_bomb = "{\"model\":";
  for (int i = 0; i < 128; ++i) json_bomb += "{\"model\":";
  CheckSerdeInvariants(json_bomb, "unclosed JSON nest");
  EXPECT_FALSE(ParseQuery(json_bomb).ok());
}

// Replays every committed fuzz seed input through the serde invariants,
// so the corpus gates every build, not just fuzzer builds.
TEST(QuerySerdeMalformedTest, FuzzSeedCorpusReplays) {
  const std::filesystem::path dir =
      std::filesystem::path(SIGSUB_FUZZ_CORPUS_DIR) / "serde";
  ASSERT_TRUE(std::filesystem::is_directory(dir))
      << "missing corpus dir " << dir;
  int replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string input{std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>()};
    CheckSerdeInvariants(input, entry.path().string());
    ++replayed;
  }
  EXPECT_GE(replayed, 20) << "corpus unexpectedly small in " << dir;
}

}  // namespace
}  // namespace api
}  // namespace sigsub
