#include "io/sports_sim.h"

#include <algorithm>

#include "core/mss.h"
#include "gtest/gtest.h"
#include "seq/model.h"
#include "testing/test_util.h"

namespace sigsub {
namespace io {
namespace {

TEST(RivalrySeriesTest, DefaultShape) {
  RivalrySeries series = RivalrySeries::Default();
  EXPECT_EQ(series.outcomes().size(), 2086);
  EXPECT_EQ(series.dates().size(), 2086);
  EXPECT_EQ(series.config().eras.size(), 5u);
  // Win rate in the vicinity of the paper's 54.27% (eras pull both ways).
  double rate = series.EmpiricalWinRate();
  EXPECT_GT(rate, 0.45);
  EXPECT_LT(rate, 0.65);
}

TEST(RivalrySeriesTest, DeterministicAcrossCalls) {
  RivalrySeries a = RivalrySeries::Default();
  RivalrySeries b = RivalrySeries::Default();
  ASSERT_EQ(a.outcomes().size(), b.outcomes().size());
  for (int64_t i = 0; i < a.outcomes().size(); ++i) {
    EXPECT_EQ(a.outcomes()[i], b.outcomes()[i]);
  }
}

TEST(RivalrySeriesTest, PlantedDynastyIsWinRich) {
  RivalrySeries series = RivalrySeries::Default();
  // The 1924-1933 era: games ~[489, 693) at win prob 0.76.
  const PlantedEra* dynasty = nullptr;
  for (const auto& era : series.config().eras) {
    if (era.num_games == 204) dynasty = &era;
  }
  ASSERT_NE(dynasty, nullptr);
  int64_t wins = series.WinsInRange(dynasty->start_game,
                                    dynasty->start_game + dynasty->num_games);
  double rate = static_cast<double>(wins) / dynasty->num_games;
  EXPECT_GT(rate, 0.66);
}

TEST(RivalrySeriesTest, MssRecoversDynastyEra) {
  RivalrySeries series = RivalrySeries::Default();
  double p = series.EmpiricalWinRate();
  auto model = seq::MultinomialModel::Make({1.0 - p, p}).value();
  auto mss = core::FindMss(series.outcomes(), model);
  ASSERT_TRUE(mss.ok());
  const PlantedEra* dynasty = nullptr;
  for (const auto& era : series.config().eras) {
    if (era.num_games == 204) dynasty = &era;
  }
  ASSERT_NE(dynasty, nullptr);
  int64_t lo = dynasty->start_game;
  int64_t hi = dynasty->start_game + dynasty->num_games;
  int64_t overlap = std::min(mss->best.end, hi) -
                    std::max(mss->best.start, lo);
  EXPECT_GT(overlap, dynasty->num_games / 2);
}

TEST(RivalrySeriesTest, GenerateValidatesEras) {
  RivalryConfig config;
  config.num_games = 100;
  config.eras = {{50, 60, 0.8, "overruns schedule"}};
  EXPECT_TRUE(
      RivalrySeries::Generate(config).status().IsInvalidArgument());

  config.eras = {{10, 20, 0.8, "a"}, {15, 10, 0.3, "overlaps a"}};
  EXPECT_TRUE(
      RivalrySeries::Generate(config).status().IsInvalidArgument());

  config.eras = {{10, 20, 1.5, "bad prob"}};
  EXPECT_TRUE(
      RivalrySeries::Generate(config).status().IsInvalidArgument());

  config.eras = {{10, 20, 0.8, "fine"}};
  EXPECT_TRUE(RivalrySeries::Generate(config).ok());
}

TEST(RivalrySeriesTest, GenerateValidatesBaseConfig) {
  RivalryConfig config;
  config.num_games = 0;
  EXPECT_TRUE(
      RivalrySeries::Generate(config).status().IsInvalidArgument());
  config.num_games = 10;
  config.base_win_prob = 1.0;
  EXPECT_TRUE(
      RivalrySeries::Generate(config).status().IsInvalidArgument());
}

TEST(RivalrySeriesTest, DatesSpanACentury) {
  RivalrySeries series = RivalrySeries::Default();
  EXPECT_EQ(series.dates().date(0).year, 1901);
  int last_year = series.dates().date(series.dates().size() - 1).year;
  EXPECT_GE(last_year, 1999);
  EXPECT_LE(last_year, 2001);
}

}  // namespace
}  // namespace io
}  // namespace sigsub
