#include "io/string_codec.h"

#include "gtest/gtest.h"
#include "seq/alphabet.h"

namespace sigsub {
namespace io {
namespace {

TEST(BinaryFromBoolsTest, EncodesBits) {
  seq::Sequence s = BinaryFromBools({true, false, true, true});
  ASSERT_EQ(s.size(), 4);
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s[1], 0);
  EXPECT_EQ(s[2], 1);
  EXPECT_EQ(s[3], 1);
}

TEST(BinaryFromBoolsTest, EmptyInput) {
  EXPECT_TRUE(BinaryFromBools({}).empty());
}

TEST(UpDownFromLevelsTest, EncodesMoves) {
  auto s = UpDownFromLevels({100.0, 101.0, 100.5, 100.5, 102.0});
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->size(), 4);
  EXPECT_EQ((*s)[0], 1);  // up
  EXPECT_EQ((*s)[1], 0);  // down
  EXPECT_EQ((*s)[2], 0);  // tie counts as down
  EXPECT_EQ((*s)[3], 1);  // up
}

TEST(UpDownFromLevelsTest, RejectsTooShort) {
  EXPECT_TRUE(UpDownFromLevels({1.0}).status().IsInvalidArgument());
  EXPECT_TRUE(UpDownFromLevels({}).status().IsInvalidArgument());
}

TEST(FormatPercentTest, Rounds) {
  EXPECT_EQ(FormatPercent(0.5427), "54.27%");
  EXPECT_EQ(FormatPercent(0.759832), "75.98%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(FormatSignedPercentTest, Signs) {
  EXPECT_EQ(FormatSignedPercent(0.681), "+68.10%");
  EXPECT_EQ(FormatSignedPercent(-0.4127), "-41.27%");
  EXPECT_EQ(FormatSignedPercent(0.0), "+0.00%");
}

TEST(ParseBinaryStringTest, RoundTrip) {
  auto s = ParseBinaryString("0110101");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 7);
  EXPECT_EQ(s->ToString(seq::Alphabet::Binary()), "0110101");
}

TEST(ParseBinaryStringTest, RejectsNonBinary) {
  EXPECT_TRUE(ParseBinaryString("0120").status().IsNotFound());
}

}  // namespace
}  // namespace io
}  // namespace sigsub
