#include "io/date_axis.h"

#include "gtest/gtest.h"

namespace sigsub {
namespace io {
namespace {

TEST(DateTest, FormatsLikePaperTables) {
  Date d{1924, 4, 17};
  EXPECT_EQ(d.ToString(), "17-04-1924");
  EXPECT_EQ((Date{2005, 12, 3}).ToString(), "03-12-2005");
}

TEST(LeapYearTest, GregorianRules) {
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_TRUE(IsLeapYear(1996));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(2023));
  EXPECT_TRUE(IsLeapYear(2024));
}

TEST(DaysInMonthTest, FebruaryAndOthers) {
  EXPECT_EQ(DaysInMonth(2023, 2), 28);
  EXPECT_EQ(DaysInMonth(2024, 2), 29);
  EXPECT_EQ(DaysInMonth(2023, 1), 31);
  EXPECT_EQ(DaysInMonth(2023, 4), 30);
  EXPECT_EQ(DaysInMonth(2023, 12), 31);
}

TEST(AddDaysTest, SimpleAndRollover) {
  EXPECT_EQ(AddDays(Date{2023, 1, 30}, 0), (Date{2023, 1, 30}));
  EXPECT_EQ(AddDays(Date{2023, 1, 30}, 2), (Date{2023, 2, 1}));
  EXPECT_EQ(AddDays(Date{2023, 12, 31}, 1), (Date{2024, 1, 1}));
  // Across a leap day.
  EXPECT_EQ(AddDays(Date{2024, 2, 28}, 1), (Date{2024, 2, 29}));
  EXPECT_EQ(AddDays(Date{2024, 2, 28}, 2), (Date{2024, 3, 1}));
  // A full year.
  EXPECT_EQ(AddDays(Date{2023, 3, 1}, 365), (Date{2024, 2, 29}));
}

TEST(DayOfWeekTest, KnownDates) {
  // 2000-01-01 was a Saturday (index 5 with Monday=0).
  EXPECT_EQ(DayOfWeek(Date{2000, 1, 1}), 5);
  // 2026-06-10 is a Wednesday.
  EXPECT_EQ(DayOfWeek(Date{2026, 6, 10}), 2);
  // 1928-10-01 was a Monday.
  EXPECT_EQ(DayOfWeek(Date{1928, 10, 1}), 0);
}

TEST(TradingDaysTest, SkipsWeekends) {
  // Start on a Friday: next trading day is Monday.
  DateAxis axis = DateAxis::TradingDays(Date{2023, 6, 2}, 3);  // Friday.
  ASSERT_EQ(axis.size(), 3);
  EXPECT_EQ(axis.date(0), (Date{2023, 6, 2}));
  EXPECT_EQ(axis.date(1), (Date{2023, 6, 5}));  // Monday.
  EXPECT_EQ(axis.date(2), (Date{2023, 6, 6}));
  for (int64_t i = 0; i < axis.size(); ++i) {
    EXPECT_LT(DayOfWeek(axis.date(i)), 5);
  }
}

TEST(TradingDaysTest, StartOnWeekendAdvances) {
  DateAxis axis = DateAxis::TradingDays(Date{2023, 6, 3}, 1);  // Saturday.
  EXPECT_EQ(axis.date(0), (Date{2023, 6, 5}));
}

TEST(TradingDaysTest, YearlyDensityIsPlausible) {
  // ~261 weekdays per year.
  DateAxis axis = DateAxis::TradingDays(Date{2000, 1, 3}, 2610);
  EXPECT_EQ(axis.date(0).year, 2000);
  int last_year = axis.date(axis.size() - 1).year;
  EXPECT_GE(last_year, 2009);
  EXPECT_LE(last_year, 2010);
}

TEST(SportsScheduleTest, GamesPerYearWithinSeason) {
  DateAxis axis = DateAxis::SportsSchedule(1901, 42, 21);
  ASSERT_EQ(axis.size(), 42);
  // First season entirely in 1901, between April and October.
  for (int64_t i = 0; i < 21; ++i) {
    EXPECT_EQ(axis.date(i).year, 1901);
    EXPECT_GE(axis.date(i).month, 4);
    EXPECT_LE(axis.date(i).month, 10);
  }
  for (int64_t i = 21; i < 42; ++i) {
    EXPECT_EQ(axis.date(i).year, 1902);
  }
  // Dates are non-decreasing inside a season.
  for (int64_t i = 1; i < 21; ++i) {
    EXPECT_LE(axis.LowerBound(axis.date(i - 1)), i);
  }
}

TEST(LowerBoundTest, FindsFirstDateNotBefore) {
  DateAxis axis = DateAxis::TradingDays(Date{2023, 1, 2}, 10);
  EXPECT_EQ(axis.LowerBound(Date{2023, 1, 2}), 0);
  EXPECT_EQ(axis.LowerBound(Date{2022, 12, 1}), 0);
  EXPECT_EQ(axis.LowerBound(Date{2023, 1, 7}), 5);  // Saturday -> Monday 9th.
  EXPECT_EQ(axis.LowerBound(Date{2024, 1, 1}), axis.size());
}

}  // namespace
}  // namespace io
}  // namespace sigsub
