#include "io/csv.h"

#include <cstdio>
#include <string>

#include "gtest/gtest.h"

namespace sigsub {
namespace io {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/sigsub_csv_" + name;
  }
};

TEST_F(CsvTest, ParseCsvLineBasics) {
  EXPECT_EQ(ParseCsvLine("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ParseCsvLine(""), (std::vector<std::string>{""}));
  EXPECT_EQ(ParseCsvLine("a,,c"), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(ParseCsvLine("a,b,"), (std::vector<std::string>{"a", "b", ""}));
}

TEST_F(CsvTest, ParseCsvLineQuoting) {
  EXPECT_EQ(ParseCsvLine("\"x,y\",z"),
            (std::vector<std::string>{"x,y", "z"}));
  EXPECT_EQ(ParseCsvLine("\"he said \"\"hi\"\"\",2"),
            (std::vector<std::string>{"he said \"hi\"", "2"}));
  // Carriage returns from CRLF files are stripped.
  EXPECT_EQ(ParseCsvLine("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST_F(CsvTest, WriteAndReadRoundTrip) {
  std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteTextFile(path,
                            "date,close\n"
                            "2020-01-02,100.5\n"
                            "2020-01-03,101.25\n")
                  .ok());
  auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0][1], "close");
  EXPECT_EQ((*rows)[2][0], "2020-01-03");
  std::remove(path.c_str());
}

TEST_F(CsvTest, ReadNumericColumn) {
  std::string path = TempPath("column.csv");
  ASSERT_TRUE(WriteTextFile(path,
                            "date,close\n"
                            "d1,100.5\n"
                            "d2,99.0\n"
                            "d3,101.0\n")
                  .ok());
  auto closes = ReadCsvNumericColumn(path, 1, /*has_header=*/true);
  ASSERT_TRUE(closes.ok());
  EXPECT_EQ(*closes, (std::vector<double>{100.5, 99.0, 101.0}));
  std::remove(path.c_str());
}

TEST_F(CsvTest, ReadNumericColumnErrors) {
  std::string path = TempPath("errors.csv");
  ASSERT_TRUE(WriteTextFile(path, "h\nnot_a_number\n").ok());
  EXPECT_TRUE(ReadCsvNumericColumn(path, 0, true)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ReadCsvNumericColumn(path, 5, true)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ReadCsvNumericColumn(path, -1, true)
                  .status()
                  .IsInvalidArgument());
  std::remove(path.c_str());
  EXPECT_TRUE(ReadCsvNumericColumn("/nonexistent/x.csv", 0, false)
                  .status()
                  .IsIOError());
}

TEST_F(CsvTest, EmptyLinesAreSkipped) {
  std::string path = TempPath("empty_lines.csv");
  ASSERT_TRUE(WriteTextFile(path, "1\n\n2\n\n").ok());
  auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
  std::remove(path.c_str());
}

TEST_F(CsvTest, WriteFailsOnBadPath) {
  EXPECT_TRUE(WriteTextFile("/nonexistent_dir/file.txt", "x").IsIOError());
}

}  // namespace
}  // namespace io
}  // namespace sigsub
