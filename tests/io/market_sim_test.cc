#include "io/market_sim.h"

#include <algorithm>

#include "core/mss.h"
#include "gtest/gtest.h"
#include "seq/model.h"
#include "testing/test_util.h"

namespace sigsub {
namespace io {
namespace {

TEST(MarketSeriesTest, PaperLengths) {
  EXPECT_EQ(MarketSeries::DowJones().updown().size(), 20906);
  EXPECT_EQ(MarketSeries::SP500().updown().size(), 15600);
  EXPECT_EQ(MarketSeries::Ibm().updown().size(), 12517);
}

TEST(MarketSeriesTest, StartDatesMatchPaperEras) {
  EXPECT_EQ(MarketSeries::DowJones().dates().date(0).year, 1928);
  EXPECT_EQ(MarketSeries::SP500().dates().date(0).year, 1950);
  EXPECT_EQ(MarketSeries::Ibm().dates().date(0).year, 1962);
}

TEST(MarketSeriesTest, Deterministic) {
  MarketSeries a = MarketSeries::SP500();
  MarketSeries b = MarketSeries::SP500();
  for (int64_t i = 0; i < a.updown().size(); i += 97) {
    EXPECT_EQ(a.updown()[i], b.updown()[i]);
  }
}

TEST(MarketSeriesTest, EmpiricalUpRateNearBase) {
  MarketSeries dow = MarketSeries::DowJones();
  double rate = dow.EmpiricalUpRate();
  EXPECT_GT(rate, 0.48);
  EXPECT_LT(rate, 0.56);
}

TEST(MarketSeriesTest, RegimeUpRatesFollowPlantedProbabilities) {
  MarketSeries dow = MarketSeries::DowJones();
  for (const auto& regime : dow.config().regimes) {
    int64_t ups = dow.UpDaysInRange(regime.start_day,
                                    regime.start_day + regime.num_days);
    double rate = static_cast<double>(ups) / regime.num_days;
    EXPECT_NEAR(rate, regime.up_prob, 0.08) << regime.label;
  }
}

TEST(MarketSeriesTest, PriceChangeSignTracksRegimeDirection) {
  MarketSeries dow = MarketSeries::DowJones();
  for (const auto& regime : dow.config().regimes) {
    double change = dow.PriceChangeInRange(
        regime.start_day, regime.start_day + regime.num_days);
    if (regime.up_prob > 0.55) {
      EXPECT_GT(change, 0.0) << regime.label;
    } else if (regime.up_prob < 0.45) {
      EXPECT_LT(change, 0.0) << regime.label;
    }
  }
}

TEST(MarketSeriesTest, MssFindsAPlantedRegimeOnSP500) {
  // The strongest planted S&P regime is the 1973-74 bear market; the MSS
  // must overlap one of the planted regimes substantially.
  MarketSeries sp = MarketSeries::SP500();
  double p = sp.EmpiricalUpRate();
  auto model = seq::MultinomialModel::Make({1.0 - p, p}).value();
  auto mss = core::FindMss(sp.updown(), model);
  ASSERT_TRUE(mss.ok());
  int64_t best_overlap = 0;
  for (const auto& regime : sp.config().regimes) {
    int64_t lo = regime.start_day;
    int64_t hi = regime.start_day + regime.num_days;
    int64_t overlap =
        std::min(mss->best.end, hi) - std::max(mss->best.start, lo);
    best_overlap = std::max(best_overlap, overlap);
  }
  EXPECT_GT(best_overlap, 100);
}

TEST(MarketSeriesTest, GenerateValidates) {
  MarketConfig config;
  config.num_days = -1;
  EXPECT_TRUE(MarketSeries::Generate(config).status().IsInvalidArgument());

  config.num_days = 100;
  config.base_up_prob = 0.0;
  EXPECT_TRUE(MarketSeries::Generate(config).status().IsInvalidArgument());

  config.base_up_prob = 0.5;
  config.regimes = {{90, 20, 0.8, "overruns"}};
  EXPECT_TRUE(MarketSeries::Generate(config).status().IsInvalidArgument());

  config.regimes = {{10, 20, 0.8, "a"}, {25, 10, 0.2, "overlaps"}};
  EXPECT_TRUE(MarketSeries::Generate(config).status().IsInvalidArgument());

  config.regimes = {{10, 20, 0.8, "ok"}};
  EXPECT_TRUE(MarketSeries::Generate(config).ok());
}

TEST(MarketSeriesTest, TradingDatesAreWeekdaysAndOrdered) {
  MarketSeries ibm = MarketSeries::Ibm();
  const DateAxis& axis = ibm.dates();
  for (int64_t i = 0; i < axis.size(); i += 251) {
    EXPECT_LT(DayOfWeek(axis.date(i)), 5);
  }
  EXPECT_GE(axis.date(axis.size() - 1).year, 2009);
}

}  // namespace
}  // namespace io
}  // namespace sigsub
