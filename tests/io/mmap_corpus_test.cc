#include "io/mmap_corpus.h"

#include <cstdint>
#include <string>
#include <vector>

#include "engine/corpus.h"
#include "engine/fingerprint.h"
#include "gtest/gtest.h"
#include "io/csv.h"
#include "seq/prefix_counts.h"
#include "seq/sequence.h"
#include "testing/test_util.h"

namespace sigsub {
namespace io {
namespace {

class MmapCorpusTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/sigsub_mmap_" + name;
  }

  std::string WriteFile(const std::string& name, const std::string& bytes) {
    std::string path = TempPath(name);
    EXPECT_TRUE(WriteTextFile(path, bytes).ok());
    return path;
  }
};

TEST_F(MmapCorpusTest, MapsFileBytesReadOnly) {
  std::string path = WriteFile("basic.bin", "ACGTACGT");
  ASSERT_OK_AND_ASSIGN(MappedFile file, MappedFile::Open(path));
  EXPECT_EQ(file.size(), 8);
  EXPECT_FALSE(file.empty());
  EXPECT_EQ(file.path(), path);
  std::span<const uint8_t> bytes = file.bytes();
  ASSERT_EQ(bytes.size(), 8u);
  EXPECT_EQ(bytes[0], 'A');
  EXPECT_EQ(bytes[7], 'T');
  file.AdviseSequential();

  // Move transfers the mapping.
  MappedFile moved = std::move(file);
  EXPECT_EQ(moved.size(), 8);
  EXPECT_EQ(moved.bytes()[3], 'T');
}

TEST_F(MmapCorpusTest, EmptyAndMissingFiles) {
  ASSERT_OK_AND_ASSIGN(MappedFile empty,
                       MappedFile::Open(WriteFile("empty.bin", "")));
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.bytes().size(), 0u);

  EXPECT_FALSE(MappedFile::Open(TempPath("does_not_exist.bin")).ok());
  EXPECT_FALSE(MappedFile::Open(::testing::TempDir()).ok());  // A directory.
}

TEST_F(MmapCorpusTest, DecodeTableAndInference) {
  std::array<uint8_t, 256> decode = MakeDecodeTable("ACGT");
  EXPECT_EQ(decode['A'], 0);
  EXPECT_EQ(decode['C'], 1);
  EXPECT_EQ(decode['G'], 2);
  EXPECT_EQ(decode['T'], 3);
  EXPECT_EQ(decode['X'], kInvalidByte);
  EXPECT_EQ(decode[0], kInvalidByte);

  std::string text = "banana";
  std::span<const uint8_t> bytes(reinterpret_cast<const uint8_t*>(text.data()),
                                 text.size());
  // Must match the text-path inference rule exactly.
  EXPECT_EQ(InferAlphabetBytes(bytes),
            engine::Corpus::InferAlphabetChars({text}));

  std::string unary = "aaaa";
  std::span<const uint8_t> ubytes(
      reinterpret_cast<const uint8_t*>(unary.data()), unary.size());
  EXPECT_EQ(InferAlphabetBytes(ubytes),
            engine::Corpus::InferAlphabetChars({unary}));

  EXPECT_EQ(FindInvalidByte(bytes, MakeDecodeTable("abn")), -1);
  EXPECT_EQ(FindInvalidByte(bytes, MakeDecodeTable("ab")), 2);  // First 'n'.
}

TEST_F(MmapCorpusTest, PrefixCountsFromBytesMatchesSequenceBuild) {
  std::string text = "mississippi";
  ASSERT_OK_AND_ASSIGN(seq::Alphabet alphabet,
                       seq::Alphabet::FromCharacters("imps"));
  ASSERT_OK_AND_ASSIGN(seq::Sequence sequence,
                       seq::Sequence::FromString(alphabet, text));
  seq::PrefixCounts reference(sequence);

  std::span<const uint8_t> bytes(reinterpret_cast<const uint8_t*>(text.data()),
                                 text.size());
  ASSERT_OK_AND_ASSIGN(
      seq::PrefixCounts streamed,
      seq::PrefixCounts::FromBytes(bytes, MakeDecodeTable("imps"), 4));
  ASSERT_EQ(streamed.sequence_size(), reference.sequence_size());
  ASSERT_EQ(streamed.alphabet_size(), reference.alphabet_size());
  for (int64_t pos = 0; pos <= reference.sequence_size(); ++pos) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(streamed.PrefixCount(c, pos), reference.PrefixCount(c, pos));
    }
  }

  // Bytes outside the table are rejected with the offending offset.
  auto bad = seq::PrefixCounts::FromBytes(bytes, MakeDecodeTable("imp"), 3);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("offset 2"), std::string::npos);
}

TEST_F(MmapCorpusTest, MappedCorpusMatchesTextLoader) {
  std::string text = "abracadabra";
  std::string path = WriteFile("record.txt", text + "\n");

  ASSERT_OK_AND_ASSIGN(engine::Corpus mapped,
                       engine::Corpus::FromMappedFile(path));
  ASSERT_OK_AND_ASSIGN(engine::Corpus decoded,
                       engine::Corpus::FromStrings({text}));

  EXPECT_TRUE(mapped.is_mapped());
  EXPECT_FALSE(decoded.is_mapped());
  EXPECT_EQ(mapped.size(), 1);
  EXPECT_EQ(mapped.source_index(0), 0);
  EXPECT_EQ(mapped.alphabet().characters(),
            decoded.alphabet().characters());
  ASSERT_EQ(mapped.mapped_record().size(), text.size());

  // The streaming fingerprint equals the decoded-path fingerprint, so
  // cache entries are shared across loaders.
  EXPECT_EQ(mapped.mapped_fingerprint(),
            engine::FingerprintSequence(decoded.sequence(0)));

  // Chunk-streamed PrefixCounts equals the in-RAM build.
  ASSERT_OK_AND_ASSIGN(seq::PrefixCounts streamed,
                       mapped.BuildMappedPrefixCounts());
  seq::PrefixCounts reference(decoded.sequence(0));
  ASSERT_EQ(streamed.sequence_size(), reference.sequence_size());
  for (int64_t pos = 0; pos <= reference.sequence_size(); ++pos) {
    for (int c = 0; c < streamed.alphabet_size(); ++c) {
      EXPECT_EQ(streamed.PrefixCount(c, pos), reference.PrefixCount(c, pos));
    }
  }

  EXPECT_FALSE(decoded.BuildMappedPrefixCounts().ok());
}

TEST_F(MmapCorpusTest, StripsFramingBytes) {
  std::string text = "010011";
  for (const std::string& framed :
       {text, text + "\n", text + "\r\n", "\xEF\xBB\xBF" + text + "\n"}) {
    std::string path = WriteFile("framed.txt", framed);
    ASSERT_OK_AND_ASSIGN(engine::Corpus corpus,
                         engine::Corpus::FromMappedFile(path));
    ASSERT_EQ(corpus.mapped_record().size(), text.size()) << framed;
    EXPECT_EQ(corpus.alphabet().characters(), "01");
  }

  // Interior newlines are data, not framing: they join the inferred
  // alphabet rather than splitting records.
  std::string path = WriteFile("interior.txt", "ab\nab\n");
  ASSERT_OK_AND_ASSIGN(engine::Corpus corpus,
                       engine::Corpus::FromMappedFile(path));
  EXPECT_EQ(corpus.mapped_record().size(), 5u);
  EXPECT_EQ(corpus.alphabet().characters(), "\nab");
}

TEST_F(MmapCorpusTest, ExplicitAlphabetValidatesBytes) {
  std::string path = WriteFile("pinned.txt", "ACGTX\n");
  EXPECT_TRUE(engine::Corpus::FromMappedFile(path, "ACGTX").ok());
  auto bad = engine::Corpus::FromMappedFile(path, "ACGT");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("offset 4"), std::string::npos);

  EXPECT_FALSE(
      engine::Corpus::FromMappedFile(WriteFile("empty.txt", "\n")).ok());
}

}  // namespace
}  // namespace io
}  // namespace sigsub
