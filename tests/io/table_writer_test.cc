#include "io/table_writer.h"

#include "gtest/gtest.h"

namespace sigsub {
namespace io {
namespace {

TEST(TableWriterTest, RendersAlignedColumns) {
  TableWriter t({"Algo", "X2", "Time"});
  t.AddRow({"Trivial", "18.69", "8.54s"});
  t.AddRow({"Our", "18.69", "0.5s"});
  std::string out = t.Render();
  // Header present, rows present, underline present.
  EXPECT_NE(out.find("Algo"), std::string::npos);
  EXPECT_NE(out.find("Trivial"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Each line has the same padded structure: "Our" padded to width 7.
  EXPECT_NE(out.find("Our    "), std::string::npos);
}

TEST(TableWriterTest, RowCountTracksRows) {
  TableWriter t({"a", "b"});
  EXPECT_EQ(t.row_count(), 0u);
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableWriterTest, CsvEscapesSpecialCells) {
  TableWriter t({"name", "value"});
  t.AddRow({"plain", "1"});
  t.AddRow({"with,comma", "2"});
  t.AddRow({"with\"quote", "3"});
  std::string csv = t.RenderCsv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,1\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\",2\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\",3\n"), std::string::npos);
}

TEST(TableWriterTest, WideCellGrowsColumn) {
  TableWriter t({"h"});
  t.AddRow({"a-very-long-cell"});
  std::string out = t.Render();
  // Underline spans the widest cell.
  EXPECT_NE(out.find(std::string(16, '-')), std::string::npos);
}

}  // namespace
}  // namespace io
}  // namespace sigsub
