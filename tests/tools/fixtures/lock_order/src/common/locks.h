#ifndef SIGSUB_COMMON_LOCKS_H_
#define SIGSUB_COMMON_LOCKS_H_

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sigsub {

// A declares a_ before B::b_ via the attribute; the order directive at the
// bottom of this file declares the opposite, closing a cycle.
struct A {
  Mutex a_ SIGSUB_ACQUIRED_BEFORE(b_);
  int counter_;  // expect-lint: lock-order
};

struct B {
  Mutex b_;
  int ok_ SIGSUB_GUARDED_BY(b_);
};

}  // namespace sigsub

// expect-lint: lock-order
// sigsub-lint: order B::b_ < A::a_

#endif  // SIGSUB_COMMON_LOCKS_H_
