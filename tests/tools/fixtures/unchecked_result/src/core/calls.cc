#include "core/api.h"

namespace sigsub {

void Exercise(bool cond) {
  Save(1);  // expect-lint: unchecked-result
  Load();  // expect-lint: unchecked-result

  if (cond) Save(2);  // expect-lint: unchecked-result

  // All of the following are legal consumption patterns.
  (void)Save(3);
  Status s = Save(4);
  if (!s.ok()) return;
  Status t = cond ? Save(5) : Save(6);
  (void)t;

  // Ambiguous name: a void overload exists, so no diagnostic.
  Reset(7);
  Reset();
}

}  // namespace sigsub
