#ifndef SIGSUB_CORE_API_H_
#define SIGSUB_CORE_API_H_

#include "common/result.h"
#include "common/status.h"

namespace sigsub {

Status Save(int v);
Result<int> Load();

// `Reset` is ambiguous on purpose: it also exists with a void return type
// below, so the analyzer must decline to enforce it.
Status Reset(int generation);
void Reset();

}  // namespace sigsub

#endif  // SIGSUB_CORE_API_H_
