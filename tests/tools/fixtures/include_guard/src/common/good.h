#ifndef SIGSUB_COMMON_GOOD_H_
#define SIGSUB_COMMON_GOOD_H_

inline int Answer() { return 42; }

#endif  // SIGSUB_COMMON_GOOD_H_
