// expect-lint: include-guard
#ifndef SIGSUB_WRONG_NAME_H_
#define SIGSUB_WRONG_NAME_H_

inline int Answer() { return 42; }

#endif  // SIGSUB_WRONG_NAME_H_
