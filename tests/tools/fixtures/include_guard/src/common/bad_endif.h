#ifndef SIGSUB_COMMON_BAD_ENDIF_H_
#define SIGSUB_COMMON_BAD_ENDIF_H_

inline int Answer() { return 42; }

// expect-lint: include-guard
#endif
