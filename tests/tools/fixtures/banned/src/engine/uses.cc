#include <mutex>

namespace sigsub {

std::mutex global_lock;  // expect-lint: raw-mutex

void Flush(int fd, const char* buf, unsigned long n) {
  ::write(fd, buf, n);  // expect-lint: raw-io
  ::fsync(fd);  // expect-lint: raw-io
}

int Roll() {
  return rand();  // expect-lint: unsafe-call
}

}  // namespace sigsub
