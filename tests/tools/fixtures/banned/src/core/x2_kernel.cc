#include <cmath>

namespace sigsub {

// The scalar chi-square kernel is an audited hot path: no libm
// transcendentals allowed.
double Kernel(double x) {
  return exp(x);  // expect-lint: audit-path
}

}  // namespace sigsub
