#include <unordered_map>

namespace sigsub {

// Serialization paths must not iterate hash containers.
std::unordered_map<int, int> table;  // expect-lint: iteration-order

}  // namespace sigsub
