#include <mutex>

// Raw std::mutex is allowed outside src/ — tests may use it freely.
std::mutex test_lock;

void WithLock() { std::lock_guard<std::mutex> hold(test_lock); }
