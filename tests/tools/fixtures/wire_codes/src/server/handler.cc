#include "server/protocol.h"

namespace sigsub {

// Classifier bodies are excluded from the production scan: naming every
// enumerator here must not count as "producing" it.
const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kFoo:
      return "EFOO";
    case ErrorCode::kBar:
      return "EBAR";
    case ErrorCode::kBaz:
      return "EBAZ";
  }
  return "EUNKNOWN";
}

bool IsRetryable(ErrorCode code) { return code == ErrorCode::kBar; }

ErrorCode HandleMalformed() { return ErrorCode::kFoo; }

ErrorCode HandleOverload() { return ErrorCode::kBaz; }

}  // namespace sigsub
