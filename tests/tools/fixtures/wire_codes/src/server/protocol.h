#ifndef SIGSUB_SERVER_PROTOCOL_H_
#define SIGSUB_SERVER_PROTOCOL_H_

namespace sigsub {

enum class ErrorCode {
  kFoo,
  // expect-lint: wire-codes, wire-codes
  kBar,
  // expect-lint: wire-codes
  kBaz,
};

const char* ErrorCodeName(ErrorCode code);
bool IsRetryable(ErrorCode code);

}  // namespace sigsub

#endif  // SIGSUB_SERVER_PROTOCOL_H_
