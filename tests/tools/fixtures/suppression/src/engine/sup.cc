namespace sigsub {

// A reasoned allow() on the same line fully suppresses the finding.
int Seed() {
  return rand();  // sigsub-lint: allow(unsafe-call): fixture exercising suppression
}

// A reasoned allow() on the line above also suppresses.
int Seed2() {
  // sigsub-lint: allow(unsafe-call): fixture exercising next-line suppression
  return rand();
}

// A reason-less allow() suppresses nothing and is itself a finding.
int Seed3() {
  // expect-lint: unsafe-call, suppression-reason
  return rand();  // sigsub-lint: allow(unsafe-call)
}

}  // namespace sigsub
