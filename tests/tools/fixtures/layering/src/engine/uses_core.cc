// Forward (legal) edge: engine depends on core.
#include "core/thing.h"

int EngineFunction() { return 3; }
