// A core/ file reaching up into engine/ — the canonical back-edge.
#include "common/ok.h"
#include "engine/thing.h"  // expect-lint: include-layering

int CoreFunction() { return 1; }
