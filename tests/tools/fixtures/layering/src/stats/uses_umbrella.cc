// Only cli/ may pull in the umbrella header.
#include "sigsub.h"  // expect-lint: include-layering

int StatsFunction() { return 2; }
