#include "common/clean.h"

#include "common/check.h"
#include "common/result.h"
#include "common/status.h"

namespace sigsub {

namespace {

Status Ping();
Result<int> Fetch();

}  // namespace

Status Forward() { return Ping(); }

void Consume(bool cond) {
  (void)Ping();
  Status s = cond ? Ping() : Forward();
  if (s.ok()) {
    (void)Fetch();
  }
  SIGSUB_CHECK_OK(Ping());
}

}  // namespace sigsub
