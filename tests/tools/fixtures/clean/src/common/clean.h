#ifndef SIGSUB_COMMON_CLEAN_H_
#define SIGSUB_COMMON_CLEAN_H_

#include "common/mutex.h"
#include "common/thread_annotations.h"

#include <atomic>
#include <cstdint>

namespace sigsub {

class Widget {
 public:
  Widget() = default;
  Widget(const Widget&) = delete;
  Widget& operator=(const Widget&) = delete;

  void Poke();

 private:
  Mutex fast_ SIGSUB_ACQUIRED_BEFORE(slow_);
  Mutex slow_;
  CondVar cv_;
  int count_ SIGSUB_GUARDED_BY(fast_);
  int64_t epoch_ SIGSUB_GUARDED_BY(slow_);
  std::atomic<bool> stop_{false};
  const int limit_ = 8;
  static constexpr int kMax = 16;
  int scratch_ SIGSUB_THREAD_CONFINED(init) = 0;
};

// Holds a Widget: an internally-synchronized member needs no annotation.
class Holder {
 public:
  void Use();

 private:
  Mutex mu_;
  int n_ SIGSUB_GUARDED_BY(mu_);
  Widget widget_;
};

}  // namespace sigsub

#endif  // SIGSUB_COMMON_CLEAN_H_
