// Golden tests for sigsub_lint: each fixture under tests/tools/fixtures/
// is a miniature repo root whose files carry expectation markers naming
// the diagnostics the analyzer must produce there. The comparison is
// bidirectional — an unexpected diagnostic fails, and so does a marker
// with no matching diagnostic. A marker matches a diagnostic for the same
// rule on its own line or on the following line (markers for lines that
// already carry another lint directive must sit on the line above, since
// the lexer reads one directive per comment).

#include "lint/analyzer.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace sigsub {
namespace lint {
namespace {

std::string FixtureRoot(const char* name) {
  return std::string(SIGSUB_LINT_FIXTURE_DIR) + "/" + name;
}

struct Marker {
  std::string file;
  int line = 0;
  std::string rule;
  bool used = false;
};

struct FixtureRun {
  std::vector<Diagnostic> diagnostics;
  std::vector<Marker> markers;
};

FixtureRun RunFixture(const char* name) {
  FixtureRun run;
  Analysis analysis;
  EXPECT_TRUE(LoadTree(FixtureRoot(name), &analysis))
      << "fixture " << name << " failed to load";
  for (const SourceFile& file : analysis.files) {
    for (const Expectation& e : file.lexed.expectations) {
      run.markers.push_back(Marker{file.rel, e.line, e.rule, false});
    }
  }
  run.diagnostics = RunRules(&analysis, {});
  return run;
}

void CheckGolden(const char* name) {
  FixtureRun run = RunFixture(name);
  for (const Diagnostic& d : run.diagnostics) {
    bool matched = false;
    for (Marker& m : run.markers) {
      if (m.used || m.file != d.file || m.rule != d.rule) continue;
      if (d.line != m.line && d.line != m.line + 1) continue;
      m.used = true;
      matched = true;
      break;
    }
    EXPECT_TRUE(matched) << name << ": unexpected diagnostic " << d.file << ":"
                         << d.line << ": [" << d.rule << "] " << d.message;
  }
  for (const Marker& m : run.markers) {
    EXPECT_TRUE(m.used) << name << ": expected a [" << m.rule
                        << "] diagnostic at " << m.file << ":" << m.line
                        << " (or the next line); none was reported";
  }
}

TEST(LintGolden, IncludeGuard) { CheckGolden("include_guard"); }

TEST(LintGolden, IncludeLayering) { CheckGolden("layering"); }

TEST(LintGolden, UncheckedResult) { CheckGolden("unchecked_result"); }

TEST(LintGolden, LockOrder) { CheckGolden("lock_order"); }

TEST(LintGolden, WireCodes) { CheckGolden("wire_codes"); }

TEST(LintGolden, BannedApis) { CheckGolden("banned"); }

TEST(LintGolden, Suppression) { CheckGolden("suppression"); }

// The clean fixture exercises shapes that historically caused false
// positives (deleted operators, ternary consumption, macro-wrapped calls,
// internally-synchronized members). It must produce nothing at all.
TEST(LintGolden, CleanFixtureHasNoFindings) {
  FixtureRun run = RunFixture("clean");
  EXPECT_TRUE(run.markers.empty())
      << "the clean fixture must not carry markers";
  for (const Diagnostic& d : run.diagnostics) {
    ADD_FAILURE() << "clean: false positive " << d.file << ":" << d.line
                  << ": [" << d.rule << "] " << d.message;
  }
}

// The acceptance bar for the lock graph: an injected cycle (attribute one
// way, order directive the other) must be reported as such.
TEST(LintLockOrder, InjectedCycleIsReported) {
  Analysis analysis;
  ASSERT_TRUE(LoadTree(FixtureRoot("lock_order"), &analysis));
  std::set<std::string> only{"lock-order"};
  std::vector<Diagnostic> diags = RunRules(&analysis, only);
  bool found_cycle = false;
  for (const Diagnostic& d : diags) {
    if (d.message.find("cycle") != std::string::npos) found_cycle = true;
  }
  EXPECT_TRUE(found_cycle)
      << "lock_order fixture did not report the injected cycle";
}

// Every registered rule id must be spendable in an allow()/marker comment;
// the five required families must each be exercised by at least one
// fixture marker.
TEST(LintRules, RequiredFamiliesHaveFixtureCoverage) {
  const char* fixtures[] = {"include_guard",  "layering", "unchecked_result",
                            "lock_order",     "wire_codes", "banned",
                            "suppression",    "clean"};
  std::set<std::string> covered;
  for (const char* name : fixtures) {
    Analysis analysis;
    ASSERT_TRUE(LoadTree(FixtureRoot(name), &analysis));
    for (const SourceFile& file : analysis.files) {
      for (const Expectation& e : file.lexed.expectations) {
        covered.insert(e.rule);
      }
    }
  }
  for (const char* family :
       {"include-layering", "unchecked-result", "lock-order", "wire-codes",
        "raw-mutex", "raw-io", "unsafe-call", "iteration-order",
        "audit-path"}) {
    EXPECT_TRUE(covered.count(family))
        << "no fixture exercises rule " << family;
  }
  std::set<std::string> known;
  for (const Rule& rule : AllRules()) known.insert(std::string(rule.name));
  known.insert("suppression-reason");  // Synthesized by the driver.
  for (const std::string& rule : covered) {
    EXPECT_TRUE(known.count(rule)) << "marker names unknown rule " << rule;
  }
}

}  // namespace
}  // namespace lint
}  // namespace sigsub
