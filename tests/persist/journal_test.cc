#include "persist/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "common/fault_injection.h"
#include "common/posix_io.h"
#include "common/result.h"
#include "persist/format.h"
#include "testing/test_util.h"

namespace sigsub {
namespace persist {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/sigsub_journal_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    path_ = dir_ + "/journal.wal";
  }

  void TearDown() override {
    fault::Disarm();
    ::unlink(path_.c_str());
    ::rmdir(dir_.c_str());
  }

  std::string dir_;
  std::string path_;
};

JournalRecord CreateRecord(const std::string& stream) {
  JournalRecord record;
  record.op = JournalOp::kCreate;
  record.stream = stream;
  record.probs = {0.25, 0.75};
  record.options.max_window = 128;
  record.options.alpha = 1e-4;
  return record;
}

JournalRecord AppendRecord(const std::string& stream,
                           std::vector<uint8_t> symbols) {
  JournalRecord record;
  record.op = JournalOp::kAppend;
  record.stream = stream;
  record.symbols = std::move(symbols);
  return record;
}

TEST_F(JournalTest, RecordCodecRoundTripsEveryOp) {
  JournalRecord create = CreateRecord("s");
  create.lsn = 7;
  ASSERT_OK_AND_ASSIGN(JournalRecord decoded,
                       DecodeJournalRecord(BytesOf(
                           EncodeJournalRecord(create))));
  EXPECT_EQ(decoded.lsn, 7u);
  EXPECT_EQ(decoded.op, JournalOp::kCreate);
  EXPECT_EQ(decoded.stream, "s");
  EXPECT_EQ(decoded.probs, create.probs);
  EXPECT_EQ(decoded.options.max_window, 128);
  EXPECT_EQ(decoded.options.alpha, 1e-4);

  JournalRecord append = AppendRecord("s", {0, 1, 1, 0});
  append.lsn = 8;
  ASSERT_OK_AND_ASSIGN(decoded, DecodeJournalRecord(BytesOf(
                                    EncodeJournalRecord(append))));
  EXPECT_EQ(decoded.op, JournalOp::kAppend);
  EXPECT_EQ(decoded.symbols, (std::vector<uint8_t>{0, 1, 1, 0}));

  JournalRecord close;
  close.op = JournalOp::kClose;
  close.stream = "s";
  close.lsn = 9;
  ASSERT_OK_AND_ASSIGN(decoded, DecodeJournalRecord(BytesOf(
                                    EncodeJournalRecord(close))));
  EXPECT_EQ(decoded.op, JournalOp::kClose);
}

TEST_F(JournalTest, DecodeRejectsTrailingBytes) {
  std::string bytes = EncodeJournalRecord(CreateRecord("s"));
  bytes += "extra";
  EXPECT_FALSE(DecodeJournalRecord(BytesOf(bytes)).ok());
}

TEST_F(JournalTest, AppendThenReopenReplaysEverything) {
  {
    JournalReplay replay;
    ASSERT_OK_AND_ASSIGN(
        Journal journal,
        Journal::Open(path_, FsyncPolicy::kAlways, &replay));
    EXPECT_TRUE(replay.records.empty());
    ASSERT_OK_AND_ASSIGN(uint64_t lsn1, journal.Append(CreateRecord("a")));
    ASSERT_OK_AND_ASSIGN(uint64_t lsn2,
                         journal.Append(AppendRecord("a", {1, 0, 1})));
    EXPECT_EQ(lsn1, 1u);
    EXPECT_EQ(lsn2, 2u);
    EXPECT_EQ(journal.last_lsn(), 2u);
  }
  JournalReplay replay;
  ASSERT_OK_AND_ASSIGN(Journal journal,
                       Journal::Open(path_, FsyncPolicy::kAlways, &replay));
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0].op, JournalOp::kCreate);
  EXPECT_EQ(replay.records[1].op, JournalOp::kAppend);
  EXPECT_EQ(replay.records[1].symbols, (std::vector<uint8_t>{1, 0, 1}));
  EXPECT_EQ(replay.truncated_bytes, 0u);
  // LSNs continue where the file left off.
  ASSERT_OK_AND_ASSIGN(uint64_t lsn, journal.Append(CreateRecord("b")));
  EXPECT_EQ(lsn, 3u);
}

TEST_F(JournalTest, TornTailIsTruncatedOnOpen) {
  {
    JournalReplay replay;
    ASSERT_OK_AND_ASSIGN(
        Journal journal,
        Journal::Open(path_, FsyncPolicy::kNone, &replay));
    ASSERT_OK(journal.Append(CreateRecord("a")).status());
    ASSERT_OK(journal.Append(AppendRecord("a", {1, 1, 1, 1})).status());
  }
  // Crash simulation: chop bytes off the last record.
  ASSERT_OK_AND_ASSIGN(std::string bytes, ReadFileToString(path_));
  size_t full = bytes.size();
  bytes.resize(full - 5);
  {
    int fd = ::open(path_.c_str(), O_WRONLY | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_OK(WriteFdAll(fd, bytes));
    ::close(fd);
  }

  JournalReplay replay;
  ASSERT_OK_AND_ASSIGN(Journal journal,
                       Journal::Open(path_, FsyncPolicy::kNone, &replay));
  ASSERT_EQ(replay.records.size(), 1u);  // The torn APPEND is gone.
  EXPECT_EQ(replay.records[0].op, JournalOp::kCreate);
  EXPECT_GT(replay.truncated_bytes, 0u);
  // The tail was truncated physically, and new appends land cleanly.
  ASSERT_OK(journal.Append(AppendRecord("a", {0})).status());
  ASSERT_OK_AND_ASSIGN(std::string repaired, ReadFileToString(path_));
  ASSERT_OK_AND_ASSIGN(JournalReplay reparsed,
                       ParseJournal(BytesOf(repaired)));
  ASSERT_EQ(reparsed.records.size(), 2u);
  EXPECT_EQ(reparsed.truncated_bytes, 0u);
  EXPECT_EQ(reparsed.records[1].symbols, (std::vector<uint8_t>{0}));
}

TEST_F(JournalTest, CorruptFrameEndsReplayAtTheLastGoodRecord) {
  {
    JournalReplay replay;
    ASSERT_OK_AND_ASSIGN(
        Journal journal,
        Journal::Open(path_, FsyncPolicy::kNone, &replay));
    ASSERT_OK(journal.Append(CreateRecord("a")).status());
    ASSERT_OK(journal.Append(AppendRecord("a", {1, 2, 3})).status());
  }
  ASSERT_OK_AND_ASSIGN(std::string bytes, ReadFileToString(path_));
  bytes[bytes.size() - 2] = static_cast<char>(bytes[bytes.size() - 2] ^ 0x7f);
  ASSERT_OK_AND_ASSIGN(JournalReplay replay, ParseJournal(BytesOf(bytes)));
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_GT(replay.truncated_bytes, 0u);
}

TEST_F(JournalTest, ParseJournalRejectsForeignFilesByName) {
  EXPECT_FALSE(ParseJournal(BytesOf("not a journal at all")).ok());
  // A snapshot header is a sigsub file of the wrong kind.
  std::string snapshot_header = EncodeFileHeader(FileKind::kSnapshot);
  EXPECT_FALSE(ParseJournal(BytesOf(snapshot_header)).ok());
}

TEST_F(JournalTest, ResetDropsRecordsButKeepsTheLsnCounter) {
  JournalReplay replay;
  ASSERT_OK_AND_ASSIGN(Journal journal,
                       Journal::Open(path_, FsyncPolicy::kAlways, &replay));
  ASSERT_OK(journal.Append(CreateRecord("a")).status());
  ASSERT_OK(journal.Append(AppendRecord("a", {1})).status());
  ASSERT_OK(journal.Reset());
  EXPECT_EQ(journal.last_lsn(), 2u);  // The counter survives the reset.

  ASSERT_OK_AND_ASSIGN(std::string bytes, ReadFileToString(path_));
  ASSERT_OK_AND_ASSIGN(JournalReplay reparsed, ParseJournal(BytesOf(bytes)));
  EXPECT_TRUE(reparsed.records.empty());

  // The next record carries LSN 3 — unique across the truncation, which
  // is what snapshot/journal reconciliation keys on.
  ASSERT_OK_AND_ASSIGN(uint64_t lsn, journal.Append(CreateRecord("b")));
  EXPECT_EQ(lsn, 3u);
}

TEST_F(JournalTest, FailedAppendLeavesTheFileParseable) {
  JournalReplay replay;
  ASSERT_OK_AND_ASSIGN(Journal journal,
                       Journal::Open(path_, FsyncPolicy::kNone, &replay));
  ASSERT_OK(journal.Append(CreateRecord("a")).status());

  // The next RawWrite fails with ENOSPC: the append reports the error
  // and the acknowledged prefix stays intact on disk.
  ASSERT_OK(fault::Arm("write:1:ENOSPC"));
  Result<uint64_t> failed = journal.Append(AppendRecord("a", {1, 2}));
  fault::Disarm();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);

  ASSERT_OK_AND_ASSIGN(std::string bytes, ReadFileToString(path_));
  ASSERT_OK_AND_ASSIGN(JournalReplay reparsed, ParseJournal(BytesOf(bytes)));
  ASSERT_EQ(reparsed.records.size(), 1u);
  EXPECT_EQ(reparsed.truncated_bytes, 0u);

  // The journal recovered: the LSN was not consumed and later appends
  // land normally.
  ASSERT_OK_AND_ASSIGN(uint64_t lsn, journal.Append(AppendRecord("a", {3})));
  EXPECT_EQ(lsn, 2u);
}

TEST_F(JournalTest, FailedFsyncBreaksTheJournalClosed) {
  JournalReplay replay;
  ASSERT_OK_AND_ASSIGN(Journal journal,
                       Journal::Open(path_, FsyncPolicy::kAlways, &replay));
  ASSERT_OK(journal.Append(CreateRecord("a")).status());

  // fsyncgate discipline: after a failed fsync the kernel may have
  // dropped the dirty pages, so no later fsync can vouch for them. The
  // journal fails closed until a restart re-reads what actually landed.
  ASSERT_OK(fault::Arm("fsync:1:EIO"));
  Result<uint64_t> failed = journal.Append(AppendRecord("a", {9}));
  fault::Disarm();
  ASSERT_FALSE(failed.ok());

  Result<uint64_t> after = journal.Append(AppendRecord("a", {9}));
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace persist
}  // namespace sigsub
