#include "persist/state_store.h"

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "common/fault_injection.h"
#include "common/posix_io.h"
#include "common/result.h"
#include "core/streaming.h"
#include "engine/result_cache.h"
#include "engine/stream_manager.h"
#include "testing/test_util.h"

// ThreadSanitizer cannot follow a fork()ed child that keeps running
// arbitrary code, so the SIGKILL crash-matrix tests compile out under
// TSan; ASan and plain builds run them.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SIGSUB_SKIP_FORK_TESTS 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define SIGSUB_SKIP_FORK_TESTS 1
#endif

namespace sigsub {
namespace persist {
namespace {

core::StreamingDetector::Options SmallOptions() {
  core::StreamingDetector::Options options;
  options.max_window = 8;
  options.alpha = 1e-4;
  return options;
}

/// The deterministic append schedule the crash matrix uses: chunk i is
/// four symbols of an alternating pattern keyed on i.
std::vector<uint8_t> Chunk(int i) {
  return {static_cast<uint8_t>(i % 2), static_cast<uint8_t>((i + 1) % 2),
          static_cast<uint8_t>(i % 2), static_cast<uint8_t>(i % 2)};
}

class StateStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/sigsub_recovery_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    fault::Disarm();
    ::unlink(StateStore::JournalPath(dir_).c_str());
    ::unlink(StateStore::SnapshotPath(dir_).c_str());
    ::unlink(StateStore::CachePath(dir_).c_str());
    ::unlink((dir_ + "/acks").c_str());
    ::rmdir(dir_.c_str());
  }

  std::string dir_;
};

/// Asserts the two managers hold bit-identical stream state.
void ExpectSameStreams(engine::StreamManager& a, engine::StreamManager& b) {
  std::vector<engine::PersistedStream> ea = a.ExportStreams();
  std::vector<engine::PersistedStream> eb = b.ExportStreams();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].name, eb[i].name);
    EXPECT_EQ(ea[i].probs, eb[i].probs);
    EXPECT_EQ(ea[i].state.position, eb[i].state.position);
    EXPECT_EQ(ea[i].state.counts, eb[i].state.counts);
    EXPECT_EQ(ea[i].state.in_alarm, eb[i].state.in_alarm);
    EXPECT_EQ(ea[i].state.recent, eb[i].state.recent);
    EXPECT_EQ(ea[i].state.alarms_raised, eb[i].state.alarms_raised);
    ASSERT_EQ(ea[i].alarms.size(), eb[i].alarms.size());
    for (size_t j = 0; j < ea[i].alarms.size(); ++j) {
      EXPECT_EQ(ea[i].alarms[j].end, eb[i].alarms[j].end);
      EXPECT_EQ(ea[i].alarms[j].chi_square, eb[i].alarms[j].chi_square);
    }
  }
}

TEST_F(StateStoreTest, JournalOnlyRecoveryRebuildsAcknowledgedState) {
  {
    engine::StreamManager streams;
    RecoveryStats recovery;
    ASSERT_OK_AND_ASSIGN(
        StateStore store,
        StateStore::Open(dir_, {.fsync_policy = FsyncPolicy::kNone},
                         &streams, nullptr, &recovery));
    EXPECT_FALSE(recovery.snapshot_loaded);
    // The server's ordering: journal first, then apply.
    ASSERT_OK(store.RecordCreate("s", {0.5, 0.5}, SmallOptions()));
    ASSERT_OK(streams.CreateStream("s", {0.5, 0.5}, SmallOptions()));
    for (int i = 0; i < 6; ++i) {
      ASSERT_OK(store.RecordAppend("s", Chunk(i)));
      ASSERT_OK(streams.Append("s", Chunk(i)).status());
    }
    ASSERT_OK(store.RecordCreate("t", {0.5, 0.5}, SmallOptions()));
    ASSERT_OK(streams.CreateStream("t", {0.5, 0.5}, SmallOptions()));
    ASSERT_OK(store.RecordClose("t"));
    ASSERT_OK(streams.CloseStream("t"));
  }

  engine::StreamManager recovered;
  RecoveryStats recovery;
  ASSERT_OK_AND_ASSIGN(
      StateStore store,
      StateStore::Open(dir_, {.fsync_policy = FsyncPolicy::kNone},
                       &recovered, nullptr, &recovery));
  EXPECT_EQ(recovery.journal_records_applied, 9);
  EXPECT_EQ(recovery.journal_records_failed, 0);
  EXPECT_FALSE(recovered.HasStream("t"));

  engine::StreamManager reference;
  ASSERT_OK(reference.CreateStream("s", {0.5, 0.5}, SmallOptions()));
  for (int i = 0; i < 6; ++i) {
    ASSERT_OK(reference.Append("s", Chunk(i)).status());
  }
  ExpectSameStreams(recovered, reference);
}

TEST_F(StateStoreTest, SnapshotPlusJournalTailRecovery) {
  {
    engine::StreamManager streams;
    engine::ResultCache cache(8);
    cache.Insert({1, 2}, {.match_count = 5});
    RecoveryStats recovery;
    ASSERT_OK_AND_ASSIGN(
        StateStore store,
        StateStore::Open(dir_, {.fsync_policy = FsyncPolicy::kNone},
                         &streams, &cache, &recovery));
    ASSERT_OK(store.RecordCreate("s", {0.5, 0.5}, SmallOptions()));
    ASSERT_OK(streams.CreateStream("s", {0.5, 0.5}, SmallOptions()));
    ASSERT_OK(store.RecordAppend("s", Chunk(0)));
    ASSERT_OK(streams.Append("s", Chunk(0)).status());

    ASSERT_OK(store.Snapshot(streams, &cache));

    // Post-snapshot tail: only these should replay from the journal.
    ASSERT_OK(store.RecordAppend("s", Chunk(1)));
    ASSERT_OK(streams.Append("s", Chunk(1)).status());
  }

  engine::StreamManager recovered;
  engine::ResultCache cache(8);
  RecoveryStats recovery;
  ASSERT_OK_AND_ASSIGN(
      StateStore store,
      StateStore::Open(dir_, {.fsync_policy = FsyncPolicy::kNone},
                       &recovered, &cache, &recovery));
  EXPECT_TRUE(recovery.snapshot_loaded);
  EXPECT_EQ(recovery.streams_restored, 1);
  EXPECT_EQ(recovery.journal_records_applied, 1);  // Chunk(1) only.
  EXPECT_EQ(recovery.cache_entries_loaded, 1);
  EXPECT_TRUE(cache.Lookup({1, 2}).has_value());

  engine::StreamManager reference;
  ASSERT_OK(reference.CreateStream("s", {0.5, 0.5}, SmallOptions()));
  ASSERT_OK(reference.Append("s", Chunk(0)).status());
  ASSERT_OK(reference.Append("s", Chunk(1)).status());
  ExpectSameStreams(recovered, reference);
}

TEST_F(StateStoreTest, CorruptSnapshotFailsOpenByName) {
  {
    engine::StreamManager streams;
    RecoveryStats recovery;
    ASSERT_OK_AND_ASSIGN(
        StateStore store,
        StateStore::Open(dir_, {.fsync_policy = FsyncPolicy::kNone},
                         &streams, nullptr, &recovery));
    ASSERT_OK(store.RecordCreate("s", {0.5, 0.5}, SmallOptions()));
    ASSERT_OK(streams.CreateStream("s", {0.5, 0.5}, SmallOptions()));
    ASSERT_OK(store.Snapshot(streams, nullptr));
  }
  {
    int fd = ::open(StateStore::SnapshotPath(dir_).c_str(),
                    O_WRONLY | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_OK(WriteFdAll(fd, "definitely not a snapshot"));
    ::close(fd);
  }
  engine::StreamManager streams;
  RecoveryStats recovery;
  Result<StateStore> reopened =
      StateStore::Open(dir_, {.fsync_policy = FsyncPolicy::kNone},
                       &streams, nullptr, &recovery);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition);
  // Nothing half-restored.
  EXPECT_TRUE(streams.StreamNames().empty());
}

TEST_F(StateStoreTest, CorruptCacheIsDiscardedQuietly) {
  {
    engine::StreamManager streams;
    engine::ResultCache cache(8);
    cache.Insert({3, 4}, {.match_count = 1});
    RecoveryStats recovery;
    ASSERT_OK_AND_ASSIGN(
        StateStore store,
        StateStore::Open(dir_, {.fsync_policy = FsyncPolicy::kNone},
                         &streams, &cache, &recovery));
    ASSERT_OK(store.Snapshot(streams, &cache));
  }
  {
    int fd = ::open(StateStore::CachePath(dir_).c_str(), O_WRONLY | O_TRUNC,
                    0644);
    ASSERT_GE(fd, 0);
    ASSERT_OK(WriteFdAll(fd, "junk cache"));
    ::close(fd);
  }
  engine::StreamManager streams;
  engine::ResultCache cache(8);
  RecoveryStats recovery;
  ASSERT_OK(StateStore::Open(dir_, {.fsync_policy = FsyncPolicy::kNone},
                             &streams, &cache, &recovery)
                .status());
  EXPECT_TRUE(recovery.cache_discarded);
  EXPECT_EQ(recovery.cache_entries_loaded, 0);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(StateStoreTest, RecordFailureSurfacesEpersistConditions) {
  engine::StreamManager streams;
  RecoveryStats recovery;
  ASSERT_OK_AND_ASSIGN(
      StateStore store,
      StateStore::Open(dir_, {.fsync_policy = FsyncPolicy::kNone},
                       &streams, nullptr, &recovery));
  ASSERT_OK(store.RecordCreate("s", {0.5, 0.5}, SmallOptions()));
  ASSERT_OK(streams.CreateStream("s", {0.5, 0.5}, SmallOptions()));

  ASSERT_OK(fault::Arm("write:1:ENOSPC"));
  Status failed = store.RecordAppend("s", Chunk(0));
  fault::Disarm();
  ASSERT_FALSE(failed.ok());
  // The op was not journaled; per the ordering contract the caller must
  // not apply it — and recovery agrees the journal holds only CREATE.
  Status ok = store.RecordAppend("s", Chunk(1));
  ASSERT_OK(ok);
  ASSERT_OK(streams.Append("s", Chunk(1)).status());
}

#ifndef SIGSUB_SKIP_FORK_TESTS

/// Crash matrix: a forked child journals a CREATE plus appends with a
/// SIGKILL armed on the nth journal write (or fsync), acknowledging each
/// completed op through a side file written with raw syscalls (the raw
/// ::write is deliberate — it must not advance the shim's counters).
/// The parent then recovers the state directory and requires the
/// recovered stream to be bit-identical to a reference fed exactly the
/// acknowledged chunks — plus at most the one in-flight chunk when the
/// kill landed between the journal write and the acknowledgment
/// (at-least-once of a real request, never an invented op).
class CrashMatrixTest : public StateStoreTest,
                        public ::testing::WithParamInterface<const char*> {};

TEST_P(CrashMatrixTest, KilledChildRecoversToAcknowledgedPrefix) {
  const std::string ack_path = dir_ + "/acks";
  const int kChunks = 8;

  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // --- child: no gtest assertions past this point; _exit on error.
    int ack_fd =
        ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (ack_fd < 0) _exit(2);
    engine::StreamManager streams;
    RecoveryStats recovery;
    auto store = StateStore::Open(
        dir_, {.fsync_policy = FsyncPolicy::kAlways}, &streams, nullptr,
        &recovery);
    if (!store.ok()) _exit(3);
    if (!fault::Arm(GetParam()).ok()) _exit(4);
    if (!store->RecordCreate("s", {0.5, 0.5}, SmallOptions()).ok()) {
      _exit(0);  // EPERSIST path: op refused, nothing applied. Legal.
    }
    if (!streams.CreateStream("s", {0.5, 0.5}, SmallOptions()).ok()) {
      _exit(5);
    }
    // Raw syscalls on purpose: the ack channel must not pass through
    // the armed shim. fsync makes the ack at least as durable as the
    // journal record it confirms.
    if (::write(ack_fd, "C", 1) != 1 || ::fsync(ack_fd) != 0) _exit(6);
    for (int i = 0; i < kChunks; ++i) {
      if (!store->RecordAppend("s", Chunk(i)).ok()) _exit(0);  // EPERSIST.
      if (!streams.Append("s", Chunk(i)).ok()) _exit(7);
      if (::write(ack_fd, "A", 1) != 1 || ::fsync(ack_fd) != 0) _exit(8);
    }
    _exit(0);  // Armed count higher than the ops performed: no kill.
  }

  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  const bool killed = WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL;
  const bool exited_clean = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
  ASSERT_TRUE(killed || exited_clean)
      << "child ended unexpectedly, wstatus=" << wstatus;

  ASSERT_OK_AND_ASSIGN(std::string acks, ReadFileToString(ack_path));
  const bool created = !acks.empty() && acks[0] == 'C';
  const int acked_chunks =
      created ? static_cast<int>(acks.size()) - 1 : 0;

  engine::StreamManager recovered;
  RecoveryStats recovery;
  ASSERT_OK_AND_ASSIGN(
      StateStore store,
      StateStore::Open(dir_, {.fsync_policy = FsyncPolicy::kAlways},
                       &recovered, nullptr, &recovery));

  const int64_t total_ops =
      recovery.streams_restored + recovery.journal_records_applied;
  const int64_t acked_ops = (created ? 1 : 0) + acked_chunks;
  // Nothing acknowledged may be lost...
  ASSERT_GE(total_ops, acked_ops)
      << "acked ops lost (acks=\"" << acks << "\")";
  // ...and nothing may be invented beyond the single in-flight op.
  ASSERT_LE(total_ops, acked_ops + 1);
  const int recovered_chunks =
      static_cast<int>(total_ops) - (total_ops > 0 ? 1 : 0);

  // Bit-identical to a reference fed exactly the recovered prefix.
  engine::StreamManager reference;
  if (total_ops > 0) {
    ASSERT_OK(reference.CreateStream("s", {0.5, 0.5}, SmallOptions()));
    for (int i = 0; i < recovered_chunks; ++i) {
      ASSERT_OK(reference.Append("s", Chunk(i)).status());
    }
  }
  ExpectSameStreams(recovered, reference);

  // And the journal survived its torn tail: appending works again.
  if (total_ops > 0) {
    ASSERT_OK(store.RecordAppend("s", Chunk(0)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    KillPoints, CrashMatrixTest,
    ::testing::Values("write:1:kill", "write:2:kill", "write:3:kill",
                      "write:5:kill", "write:8:kill", "write:40:kill",
                      "fsync:1:kill", "fsync:3:kill", "fsync:7:kill"));

#endif  // SIGSUB_SKIP_FORK_TESTS

}  // namespace
}  // namespace persist
}  // namespace sigsub
