#include "persist/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "common/check.h"
#include "common/posix_io.h"
#include "common/result.h"
#include "core/streaming.h"
#include "engine/stream_manager.h"
#include "persist/format.h"
#include "seq/generators.h"
#include "seq/model.h"
#include "seq/rng.h"
#include "testing/test_util.h"

namespace sigsub {
namespace persist {
namespace {

using core::StreamingDetector;
using engine::PersistedStream;

std::vector<uint8_t> TestStream(uint64_t seed, int64_t length) {
  seq::Rng rng(seed);
  auto stream = seq::GenerateRegimes(
      2, {{length / 2, {0.5, 0.5}}, {length / 4, {0.05, 0.95}},
          {length / 4, {0.5, 0.5}}},
      rng);
  auto symbols = stream->symbols();
  return std::vector<uint8_t>(symbols.begin(), symbols.end());
}

PersistedStream MakePersisted(const std::string& name) {
  StreamingDetector::Options options;
  options.max_window = 64;
  options.alpha = 1e-4;
  auto detector =
      StreamingDetector::Make(seq::MultinomialModel::Uniform(2), options);
  SIGSUB_CHECK(detector.ok());
  std::vector<uint8_t> symbols = TestStream(11, 400);
  std::vector<StreamingDetector::Alarm> alarms =
      detector->AppendChunk(symbols);

  PersistedStream persisted;
  persisted.name = name;
  persisted.probs = {0.5, 0.5};
  persisted.options = options;
  persisted.state = detector->SaveState();
  persisted.alarms = std::move(alarms);
  persisted.alarms_dropped = 3;
  return persisted;
}

TEST(SnapshotCodecTest, RoundTripsStreamsAndAlarms) {
  SnapshotData data;
  data.last_lsn = 42;
  data.streams.push_back(MakePersisted("alpha"));
  data.streams.push_back(MakePersisted("beta"));

  ASSERT_OK_AND_ASSIGN(SnapshotData decoded,
                       DecodeSnapshot(BytesOf(EncodeSnapshot(data))));
  EXPECT_EQ(decoded.last_lsn, 42u);
  ASSERT_EQ(decoded.streams.size(), 2u);
  const engine::PersistedStream& in = data.streams[0];
  const engine::PersistedStream& out = decoded.streams[0];
  EXPECT_EQ(out.name, "alpha");
  EXPECT_EQ(out.probs, in.probs);
  EXPECT_EQ(out.options.max_window, in.options.max_window);
  EXPECT_EQ(out.options.alpha, in.options.alpha);
  EXPECT_EQ(out.options.x2_threshold, in.options.x2_threshold);
  EXPECT_EQ(out.options.rearm_fraction, in.options.rearm_fraction);
  EXPECT_EQ(out.state.position, in.state.position);
  EXPECT_EQ(out.state.alarms_raised, in.state.alarms_raised);
  EXPECT_EQ(out.state.counts, in.state.counts);
  EXPECT_EQ(out.state.in_alarm, in.state.in_alarm);
  EXPECT_EQ(out.state.recent, in.state.recent);
  EXPECT_EQ(out.alarms_dropped, 3);
  ASSERT_EQ(out.alarms.size(), in.alarms.size());
  for (size_t i = 0; i < in.alarms.size(); ++i) {
    EXPECT_EQ(out.alarms[i].end, in.alarms[i].end);
    EXPECT_EQ(out.alarms[i].length, in.alarms[i].length);
    // Doubles travel as raw bits, so exact comparison is the contract.
    EXPECT_EQ(out.alarms[i].chi_square, in.alarms[i].chi_square);
    EXPECT_EQ(out.alarms[i].p_value, in.alarms[i].p_value);
  }
}

TEST(SnapshotCodecTest, EmptySnapshotRoundTrips) {
  SnapshotData data;
  ASSERT_OK_AND_ASSIGN(SnapshotData decoded,
                       DecodeSnapshot(BytesOf(EncodeSnapshot(data))));
  EXPECT_EQ(decoded.last_lsn, 0u);
  EXPECT_TRUE(decoded.streams.empty());
}

TEST(SnapshotCodecTest, RejectsDamageByName) {
  SnapshotData data;
  data.streams.push_back(MakePersisted("s"));
  std::string bytes = EncodeSnapshot(data);

  {  // Bit flip in the payload: frame CRC catches it.
    std::string bad = bytes;
    bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x10);
    EXPECT_FALSE(DecodeSnapshot(BytesOf(bad)).ok());
  }
  {  // Truncation: snapshots have no legitimate torn state.
    std::string bad = bytes.substr(0, bytes.size() - 7);
    EXPECT_FALSE(DecodeSnapshot(BytesOf(bad)).ok());
  }
  {  // Trailing garbage after the payload frame.
    std::string bad = bytes + "xxxx";
    EXPECT_FALSE(DecodeSnapshot(BytesOf(bad)).ok());
  }
  {  // A journal file is not a snapshot.
    EXPECT_FALSE(
        DecodeSnapshot(BytesOf(EncodeFileHeader(FileKind::kJournal))).ok());
  }
}

TEST(SnapshotFileTest, WriteReadRoundTripAndNamedFailures) {
  char tmpl[] = "/tmp/sigsub_snapshot_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  std::string dir = tmpl;
  std::string path = dir + "/snapshot.bin";

  // Absent file = cold start, by the NotFound contract.
  Result<SnapshotData> missing = ReadSnapshotFile(path);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  SnapshotData data;
  data.last_lsn = 9;
  data.streams.push_back(MakePersisted("s"));
  ASSERT_OK(WriteSnapshotFile(path, data));
  ASSERT_OK_AND_ASSIGN(SnapshotData decoded, ReadSnapshotFile(path));
  EXPECT_EQ(decoded.last_lsn, 9u);
  ASSERT_EQ(decoded.streams.size(), 1u);

  // Corruption is FailedPrecondition naming the path, never a crash.
  {
    int fd = ::open(path.c_str(), O_WRONLY, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_OK(WriteFdAll(fd, "garbage"));
    ::close(fd);
  }
  Result<SnapshotData> corrupt = ReadSnapshotFile(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(corrupt.status().message().find(path), std::string::npos);

  ::unlink(path.c_str());
  ::rmdir(dir.c_str());
}

// ------------------------------------------------------------------ matrix
//
// Snapshot/restore must be bit-identical for EVERY detector option
// combination: threshold mode (calibrated alpha vs raw X² override),
// hysteresis (off, default, always-rearmed via +inf), and window size.
// For each combination: run a detector over a prefix, save, restore into
// a fresh detector, then feed the same suffix to both and require equal
// counters, positions, alarm totals, and bitwise-equal X² values.

struct MatrixCase {
  int64_t max_window;
  bool use_x2_threshold;  // false = calibrated alpha path.
  double rearm_fraction;
};

class SnapshotOptionMatrixTest
    : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(SnapshotOptionMatrixTest, RestoredDetectorContinuesBitIdentically) {
  const MatrixCase& c = GetParam();
  StreamingDetector::Options options;
  options.max_window = c.max_window;
  if (c.use_x2_threshold) {
    options.x2_threshold = 6.0;  // Shallow: exercises frequent alarms.
  } else {
    options.alpha = 1e-4;
  }
  options.rearm_fraction = c.rearm_fraction;

  auto model = seq::MultinomialModel::Uniform(2);
  ASSERT_OK_AND_ASSIGN(StreamingDetector original,
                       StreamingDetector::Make(model, options));

  std::vector<uint8_t> symbols = TestStream(29, 600);
  const size_t cut = symbols.size() / 2;
  std::span<const uint8_t> prefix(symbols.data(), cut);
  std::span<const uint8_t> suffix(symbols.data() + cut,
                                  symbols.size() - cut);
  original.AppendChunk(prefix);

  // Serialize through the real snapshot codec, not just SaveState, so
  // the on-disk double/bit discipline is part of what's tested.
  SnapshotData data;
  PersistedStream persisted;
  persisted.name = "m";
  persisted.probs = {0.5, 0.5};
  persisted.options = options;
  persisted.state = original.SaveState();
  data.streams.push_back(persisted);
  ASSERT_OK_AND_ASSIGN(SnapshotData decoded,
                       DecodeSnapshot(BytesOf(EncodeSnapshot(data))));

  ASSERT_OK_AND_ASSIGN(StreamingDetector restored,
                       StreamingDetector::Make(model, options));
  ASSERT_OK(restored.RestoreState(decoded.streams[0].state));
  EXPECT_EQ(restored.position(), original.position());

  std::vector<StreamingDetector::Alarm> original_alarms =
      original.AppendChunk(suffix);
  std::vector<StreamingDetector::Alarm> restored_alarms =
      restored.AppendChunk(suffix);

  EXPECT_EQ(restored.position(), original.position());
  EXPECT_EQ(restored.alarms_raised(), original.alarms_raised());
  ASSERT_EQ(restored_alarms.size(), original_alarms.size());
  for (size_t i = 0; i < original_alarms.size(); ++i) {
    EXPECT_EQ(restored_alarms[i].end, original_alarms[i].end);
    EXPECT_EQ(restored_alarms[i].length, original_alarms[i].length);
    EXPECT_EQ(restored_alarms[i].chi_square, original_alarms[i].chi_square);
  }
  std::vector<double> original_x2 = original.CurrentChiSquares();
  std::vector<double> restored_x2 = restored.CurrentChiSquares();
  ASSERT_EQ(restored_x2.size(), original_x2.size());
  for (size_t i = 0; i < original_x2.size(); ++i) {
    // Bitwise equality — the whole point of counter-exact restore.
    EXPECT_EQ(restored_x2[i], original_x2[i]) << "scale " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOptionCombinations, SnapshotOptionMatrixTest,
    ::testing::Values(
        MatrixCase{4, false, 0.0}, MatrixCase{4, false, 0.5},
        MatrixCase{4, false, 1.0},
        MatrixCase{4, false, std::numeric_limits<double>::infinity()},
        MatrixCase{4, true, 0.0}, MatrixCase{4, true, 0.5},
        MatrixCase{4, true, 1.0},
        MatrixCase{4, true, std::numeric_limits<double>::infinity()},
        MatrixCase{64, false, 0.0}, MatrixCase{64, false, 0.5},
        MatrixCase{64, false, 1.0},
        MatrixCase{64, false, std::numeric_limits<double>::infinity()},
        MatrixCase{64, true, 0.0}, MatrixCase{64, true, 0.5},
        MatrixCase{64, true, 1.0},
        MatrixCase{64, true, std::numeric_limits<double>::infinity()}));

TEST(RestoreValidationTest, CorruptStateIsNamedNeverAdopted) {
  StreamingDetector::Options options;
  options.max_window = 8;
  auto model = seq::MultinomialModel::Uniform(2);
  ASSERT_OK_AND_ASSIGN(StreamingDetector donor,
                       StreamingDetector::Make(model, options));
  std::vector<uint8_t> symbols = TestStream(5, 100);
  donor.AppendChunk(symbols);
  StreamingDetector::State good = donor.SaveState();

  auto expect_rejected = [&](StreamingDetector::State state) {
    ASSERT_OK_AND_ASSIGN(StreamingDetector target,
                         StreamingDetector::Make(model, options));
    Status status = target.RestoreState(state);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    // Detector unchanged: it still behaves as freshly made.
    EXPECT_EQ(target.position(), 0);
  };

  {  // Negative position.
    StreamingDetector::State bad = good;
    bad.position = -1;
    expect_rejected(bad);
  }
  {  // Wrong counter-block shape.
    StreamingDetector::State bad = good;
    bad.counts.pop_back();
    expect_rejected(bad);
  }
  {  // Ring symbol outside the alphabet.
    StreamingDetector::State bad = good;
    bad.recent[0] = 77;
    expect_rejected(bad);
  }
  {  // Hysteresis flag that is neither 0 nor 1.
    StreamingDetector::State bad = good;
    bad.in_alarm[0] = 2;
    expect_rejected(bad);
  }
  {  // Counter sums no longer match min(scale, position).
    StreamingDetector::State bad = good;
    bad.counts[0] += 1;
    expect_rejected(bad);
  }
  {  // Negative count.
    StreamingDetector::State bad = good;
    bad.counts[0] = -5;
    bad.counts[1] += 5 + good.counts[0];
    expect_rejected(bad);
  }

  // The pristine state still restores (the lambda above didn't poison
  // anything global).
  ASSERT_OK_AND_ASSIGN(StreamingDetector target,
                       StreamingDetector::Make(model, options));
  ASSERT_OK(target.RestoreState(good));
  EXPECT_EQ(target.position(), donor.position());
}

}  // namespace
}  // namespace persist
}  // namespace sigsub
