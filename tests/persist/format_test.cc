#include "persist/format.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "common/result.h"
#include "testing/test_util.h"

namespace sigsub {
namespace persist {
namespace {

TEST(BinaryCodecTest, ScalarsRoundTrip) {
  BinaryWriter writer;
  writer.PutU8(0xab);
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x0123456789abcdefULL);
  writer.PutI64(-42);
  writer.PutDouble(3.141592653589793);
  writer.PutDouble(std::numeric_limits<double>::infinity());
  writer.PutString("hello");
  writer.PutBytes(std::vector<uint8_t>{1, 2, 3});

  BinaryReader reader(BytesOf(writer.bytes()));
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0.0, inf = 0.0;
  std::string text;
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(reader.GetU8(&u8));
  ASSERT_TRUE(reader.GetU32(&u32));
  ASSERT_TRUE(reader.GetU64(&u64));
  ASSERT_TRUE(reader.GetI64(&i64));
  ASSERT_TRUE(reader.GetDouble(&d));
  ASSERT_TRUE(reader.GetDouble(&inf));
  ASSERT_TRUE(reader.GetString(&text));
  ASSERT_TRUE(reader.GetBytes(&bytes));
  EXPECT_TRUE(reader.exhausted());

  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(d, 3.141592653589793);  // Bit round-trip, so exact compare.
  EXPECT_EQ(inf, std::numeric_limits<double>::infinity());
  EXPECT_EQ(text, "hello");
  EXPECT_EQ(bytes, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(BinaryCodecTest, ReaderRefusesTruncatedScalars) {
  BinaryWriter writer;
  writer.PutU64(7);
  std::string bytes = writer.Take();
  bytes.resize(5);
  BinaryReader reader(BytesOf(bytes));
  uint64_t value = 0;
  EXPECT_FALSE(reader.GetU64(&value));
  // A failed read must not advance: the u32 prefix is still readable.
  uint32_t small = 0;
  EXPECT_TRUE(reader.GetU32(&small));
}

TEST(BinaryCodecTest, LyingLengthPrefixFailsWithoutAllocating) {
  // A 4 GiB length prefix followed by 3 bytes: the reader must reject
  // it from remaining(), never reserve the announced size.
  BinaryWriter writer;
  writer.PutU32(0xffffff00u);
  writer.PutU8('x');
  writer.PutU8('y');
  writer.PutU8('z');
  BinaryReader reader(BytesOf(writer.bytes()));
  std::string text;
  EXPECT_FALSE(reader.GetString(&text));
  // The failed GetString rewound its length prefix.
  uint32_t prefix = 0;
  EXPECT_TRUE(reader.GetU32(&prefix));
  EXPECT_EQ(prefix, 0xffffff00u);
}

TEST(Crc32Test, MatchesKnownVector) {
  // The classic IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string_view("")), 0u);
}

TEST(BuildFingerprintTest, StableWithinAProcess) {
  EXPECT_EQ(BuildFingerprint(), BuildFingerprint());
  EXPECT_NE(BuildFingerprint(), 0u);
}

TEST(FileHeaderTest, RoundTrips) {
  std::string header = EncodeFileHeader(FileKind::kJournal);
  ASSERT_OK_AND_ASSIGN(
      size_t size,
      CheckFileHeader(BytesOf(header), FileKind::kJournal,
                      /*require_fingerprint=*/false));
  EXPECT_EQ(size, header.size());
}

TEST(FileHeaderTest, NamesEachFailureMode) {
  std::string header = EncodeFileHeader(FileKind::kSnapshot);

  {  // Truncated.
    auto result = CheckFileHeader(BytesOf(header).subspan(0, 10),
                                  FileKind::kSnapshot, false);
    EXPECT_FALSE(result.ok());
  }
  {  // Wrong magic.
    std::string bad = header;
    bad[0] = 'X';
    auto result = CheckFileHeader(BytesOf(bad), FileKind::kSnapshot, false);
    EXPECT_FALSE(result.ok());
  }
  {  // Wrong kind: a journal header is not a snapshot header.
    std::string other = EncodeFileHeader(FileKind::kJournal);
    auto result =
        CheckFileHeader(BytesOf(other), FileKind::kSnapshot, false);
    EXPECT_FALSE(result.ok());
  }
  {  // Header CRC flips on any bit damage.
    std::string bad = header;
    bad[9] ^= 0x01;
    auto result = CheckFileHeader(BytesOf(bad), FileKind::kSnapshot, false);
    EXPECT_FALSE(result.ok());
  }
}

TEST(FileHeaderTest, FingerprintOnlyEnforcedWhenRequired) {
  std::string header = EncodeFileHeader(FileKind::kResultCache);
  // Flip a fingerprint byte and repair the header CRC so only the
  // fingerprint differs — the "same format, different build" case.
  // Layout: magic(4) version(4) kind(4) fingerprint(8) crc(4).
  std::string bad = header;
  bad[12] = static_cast<char>(bad[12] ^ 0x5a);
  uint32_t crc = Crc32(std::string_view(bad).substr(0, 20));
  for (int i = 0; i < 4; ++i) {
    bad[20 + i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  EXPECT_TRUE(
      CheckFileHeader(BytesOf(bad), FileKind::kResultCache, false).ok());
  auto strict = CheckFileHeader(BytesOf(bad), FileKind::kResultCache, true);
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FrameTest, AppendThenParseRoundTrips) {
  std::string buffer;
  AppendFrame(&buffer, "first");
  AppendFrame(&buffer, "");
  AppendFrame(&buffer, std::string(1000, 'x'));

  FrameParser parser(BytesOf(buffer), 0);
  std::span<const uint8_t> payload;
  ASSERT_EQ(parser.Next(&payload), FrameStatus::kOk);
  EXPECT_EQ(std::string(payload.begin(), payload.end()), "first");
  ASSERT_EQ(parser.Next(&payload), FrameStatus::kOk);
  EXPECT_TRUE(payload.empty());
  ASSERT_EQ(parser.Next(&payload), FrameStatus::kOk);
  EXPECT_EQ(payload.size(), 1000u);
  EXPECT_EQ(parser.Next(&payload), FrameStatus::kEnd);
  EXPECT_EQ(parser.offset(), buffer.size());
}

TEST(FrameTest, TornTailReportsTruncationPoint) {
  std::string buffer;
  AppendFrame(&buffer, "complete");
  size_t good = buffer.size();
  AppendFrame(&buffer, "interrupted");
  buffer.resize(buffer.size() - 3);  // Crash mid-frame.

  FrameParser parser(BytesOf(buffer), 0);
  std::span<const uint8_t> payload;
  ASSERT_EQ(parser.Next(&payload), FrameStatus::kOk);
  EXPECT_EQ(parser.Next(&payload), FrameStatus::kTorn);
  EXPECT_EQ(parser.offset(), good);  // Exactly where to truncate.
}

TEST(FrameTest, CorruptPayloadFailsItsCrc) {
  std::string buffer;
  AppendFrame(&buffer, "payload-bytes");
  buffer[buffer.size() - 2] ^= 0x40;
  FrameParser parser(BytesOf(buffer), 0);
  std::span<const uint8_t> payload;
  EXPECT_EQ(parser.Next(&payload), FrameStatus::kCorrupt);
  EXPECT_EQ(parser.offset(), 0u);
}

TEST(FrameTest, OversizedLengthFieldIsCorruptNotTorn) {
  // A length over kMaxFramePayload can never be satisfied by waiting
  // for more bytes; report corruption, not a torn tail.
  BinaryWriter writer;
  writer.PutU32(kMaxFramePayload + 1);
  writer.PutU32(0);
  std::string buffer = writer.Take();
  buffer += "some bytes";
  FrameParser parser(BytesOf(buffer), 0);
  std::span<const uint8_t> payload;
  EXPECT_EQ(parser.Next(&payload), FrameStatus::kCorrupt);
}

}  // namespace
}  // namespace persist
}  // namespace sigsub
