#include "persist/cache_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "common/posix_io.h"
#include "common/result.h"
#include "engine/result_cache.h"
#include "persist/format.h"
#include "testing/test_util.h"

namespace sigsub {
namespace persist {
namespace {

using engine::CacheEntry;
using engine::CacheKey;
using engine::CachedResult;
using engine::ResultCache;

CacheEntry MakeEntry(uint64_t seed) {
  CacheEntry entry;
  entry.key = {seed * 0x1111, seed * 0x2222 + 1};
  entry.value.substrings = {
      {.start = static_cast<int64_t>(seed), .end = static_cast<int64_t>(seed + 5),
       .chi_square = 1.5 * static_cast<double>(seed)},
      {.start = 0, .end = 2, .chi_square = 0.25},
  };
  entry.value.best = entry.value.substrings[0];
  entry.value.match_count = static_cast<int64_t>(seed * 10);
  return entry;
}

TEST(CacheCodecTest, EntriesRoundTrip) {
  std::vector<CacheEntry> entries = {MakeEntry(1), MakeEntry(2),
                                     MakeEntry(3)};
  ASSERT_OK_AND_ASSIGN(
      std::vector<CacheEntry> decoded,
      DecodeResultCache(BytesOf(EncodeResultCache(entries))));
  ASSERT_EQ(decoded.size(), 3u);
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded[i].key, entries[i].key);
    EXPECT_EQ(decoded[i].value.match_count, entries[i].value.match_count);
    ASSERT_EQ(decoded[i].value.substrings.size(),
              entries[i].value.substrings.size());
    for (size_t j = 0; j < entries[i].value.substrings.size(); ++j) {
      EXPECT_EQ(decoded[i].value.substrings[j].start,
                entries[i].value.substrings[j].start);
      EXPECT_EQ(decoded[i].value.substrings[j].end,
                entries[i].value.substrings[j].end);
      EXPECT_EQ(decoded[i].value.substrings[j].chi_square,
                entries[i].value.substrings[j].chi_square);
    }
    EXPECT_EQ(decoded[i].value.best.chi_square,
              entries[i].value.best.chi_square);
  }
}

TEST(CacheCodecTest, ForeignBuildFingerprintIsRejectedByName) {
  std::string bytes = EncodeResultCache({MakeEntry(1)});
  // Flip a fingerprint byte and repair the header CRC: a structurally
  // valid cache from a "different build". Header layout: magic(4)
  // version(4) kind(4) fingerprint(8) crc(4).
  bytes[12] = static_cast<char>(bytes[12] ^ 0x5a);
  uint32_t crc = Crc32(std::string_view(bytes).substr(0, 20));
  for (int i = 0; i < 4; ++i) {
    bytes[20 + i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  Result<std::vector<CacheEntry>> result =
      DecodeResultCache(BytesOf(bytes));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("fingerprint"),
            std::string::npos);
}

TEST(CacheCodecTest, CorruptPayloadIsRejected) {
  std::string bytes = EncodeResultCache({MakeEntry(1), MakeEntry(2)});
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x01);
  EXPECT_FALSE(DecodeResultCache(BytesOf(bytes)).ok());
}

TEST(CacheStoreTest, SaveLoadRoundTripsThroughAResultCache) {
  char tmpl[] = "/tmp/sigsub_cache_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  std::string dir = tmpl;
  std::string path = dir + "/cache.bin";

  ResultCache cache(16);
  CacheEntry oldest = MakeEntry(1);
  CacheEntry newest = MakeEntry(2);
  cache.Insert(oldest.key, oldest.value);
  cache.Insert(newest.key, newest.value);
  ASSERT_OK(SaveResultCacheFile(path, cache));

  ResultCache restored(16);
  ASSERT_OK_AND_ASSIGN(int64_t loaded, LoadResultCacheFile(path, &restored));
  EXPECT_EQ(loaded, 2);
  EXPECT_EQ(restored.size(), 2u);
  auto hit = restored.Lookup(newest.key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->match_count, newest.value.match_count);

  // MRU order survives the round trip: with capacity 1 only the most
  // recently used entry is kept.
  ResultCache tiny(1);
  ASSERT_OK(LoadResultCacheFile(path, &tiny).status());
  EXPECT_EQ(tiny.size(), 1u);
  EXPECT_TRUE(tiny.Lookup(newest.key).has_value());
  EXPECT_FALSE(tiny.Lookup(oldest.key).has_value());

  // Absent file: NotFound, cache untouched.
  Result<int64_t> missing =
      LoadResultCacheFile(dir + "/nope.bin", &restored);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(restored.size(), 2u);

  // Corrupt file: FailedPrecondition naming the path, cache untouched.
  {
    int fd = ::open(path.c_str(), O_WRONLY | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_OK(WriteFdAll(fd, "junk"));
    ::close(fd);
  }
  Result<int64_t> corrupt = LoadResultCacheFile(path, &restored);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(corrupt.status().message().find(path), std::string::npos);
  EXPECT_EQ(restored.size(), 2u);

  ::unlink(path.c_str());
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace persist
}  // namespace sigsub
