#include "seq/generators.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace sigsub {
namespace seq {
namespace {

TEST(GeneratorsTest, NullStringHasUniformFrequencies) {
  Rng rng(101);
  const int k = 4;
  const int64_t n = 100000;
  Sequence s = GenerateNull(k, n, rng);
  ASSERT_EQ(s.size(), n);
  std::vector<int64_t> counts = s.CountsInRange(0, n);
  for (int c = 0; c < k; ++c) {
    EXPECT_NEAR(static_cast<double>(counts[c]) / n, 0.25, 0.01) << c;
  }
}

TEST(GeneratorsTest, MultinomialMatchesModelFrequencies) {
  Rng rng(102);
  MultinomialModel m = MultinomialModel::Geometric(5);
  const int64_t n = 200000;
  Sequence s = GenerateMultinomial(m, n, rng);
  std::vector<int64_t> counts = s.CountsInRange(0, n);
  for (int c = 0; c < 5; ++c) {
    EXPECT_NEAR(static_cast<double>(counts[c]) / n, m.prob(c),
                0.05 * m.prob(c) + 0.002)
        << c;
  }
}

TEST(GeneratorsTest, DeterministicGivenSeed) {
  Rng rng1(7);
  Rng rng2(7);
  Sequence a = GenerateNull(3, 1000, rng1);
  Sequence b = GenerateNull(3, 1000, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(GeneratorsTest, ZeroLengthIsEmpty) {
  Rng rng(1);
  EXPECT_TRUE(GenerateNull(2, 0, rng).empty());
  EXPECT_TRUE(GenerateMarkov(MarkovModel::PaperFamily(3), 0, rng).empty());
}

TEST(GeneratorsTest, MarkovTransitionFrequencies) {
  Rng rng(103);
  MarkovModel m = MarkovModel::BiasedBinary(0.8);
  const int64_t n = 200000;
  Sequence s = GenerateMarkov(m, n, rng);
  int64_t same = 0;
  for (int64_t i = 1; i < n; ++i) {
    if (s[i] == s[i - 1]) ++same;
  }
  EXPECT_NEAR(static_cast<double>(same) / (n - 1), 0.8, 0.01);
}

TEST(GeneratorsTest, BiasedBinaryHalfIsMemoryless) {
  Rng rng(104);
  Sequence s = GenerateBiasedBinary(0.5, 100000, rng);
  int64_t same = 0;
  for (int64_t i = 1; i < s.size(); ++i) {
    if (s[i] == s[i - 1]) ++same;
  }
  EXPECT_NEAR(static_cast<double>(same) / (s.size() - 1), 0.5, 0.01);
}

TEST(GeneratorsTest, PaperMarkovFamilyStationaryFrequencies) {
  Rng rng(105);
  MarkovModel m = MarkovModel::PaperFamily(3);
  const int64_t n = 300000;
  Sequence s = GenerateMarkov(m, n, rng);
  std::vector<int64_t> counts = s.CountsInRange(0, n);
  std::vector<double> pi = m.StationaryDistribution();
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(static_cast<double>(counts[c]) / n, pi[c], 0.01) << c;
  }
}

TEST(GeneratorsTest, RegimesProduceRequestedLengths) {
  Rng rng(106);
  std::vector<Regime> regimes = {
      {100, {0.5, 0.5}},
      {50, {0.9, 0.1}},
      {200, {0.5, 0.5}},
  };
  auto s = GenerateRegimes(2, regimes, rng);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 350);
  // The middle segment should be visibly 0-heavy.
  std::vector<int64_t> mid = s->CountsInRange(100, 150);
  EXPECT_GT(mid[0], 35);
}

TEST(GeneratorsTest, RegimesValidateProbabilities) {
  Rng rng(1);
  EXPECT_TRUE(GenerateRegimes(2, {{10, {0.7, 0.7}}}, rng)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GenerateRegimes(2, {{10, {0.5, 0.3, 0.2}}}, rng)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GenerateRegimes(2, {{-5, {0.5, 0.5}}}, rng)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GenerateRegimes(1, {}, rng).status().IsInvalidArgument());
}

TEST(GeneratorsTest, RegimesEmptyPlanIsEmptySequence) {
  Rng rng(2);
  auto s = GenerateRegimes(2, {}, rng);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->empty());
}

}  // namespace
}  // namespace seq
}  // namespace sigsub
