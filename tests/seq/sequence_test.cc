#include "seq/sequence.h"

#include "gtest/gtest.h"
#include "seq/alphabet.h"

namespace sigsub {
namespace seq {
namespace {

TEST(SequenceTest, FromStringRoundTrip) {
  Alphabet a = Alphabet::FromCharacters("ACGT").value();
  auto s = Sequence::FromString(a, "GATTACA");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 7);
  EXPECT_EQ(s->alphabet_size(), 4);
  EXPECT_EQ(s->ToString(a), "GATTACA");
}

TEST(SequenceTest, FromStringRejectsUnknownCharacters) {
  Alphabet a = Alphabet::Binary();
  EXPECT_TRUE(Sequence::FromString(a, "0102").status().IsNotFound());
}

TEST(SequenceTest, FromSymbolsValidatesRange) {
  EXPECT_TRUE(Sequence::FromSymbols(2, {0, 1, 0}).ok());
  EXPECT_TRUE(Sequence::FromSymbols(2, {0, 2}).status().IsInvalidArgument());
  EXPECT_TRUE(Sequence::FromSymbols(1, {0}).status().IsInvalidArgument());
  EXPECT_TRUE(Sequence::FromSymbols(256, {}).status().IsInvalidArgument());
}

TEST(SequenceTest, EmptyAndAppend) {
  Sequence s(3);
  EXPECT_TRUE(s.empty());
  s.Append(2);
  s.Append(0);
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[1], 0);
}

TEST(SequenceTest, CountsInRange) {
  Alphabet a = Alphabet::Binary();
  Sequence s = Sequence::FromString(a, "0110110").value();
  auto all = s.CountsInRange(0, 7);
  EXPECT_EQ(all[0], 3);
  EXPECT_EQ(all[1], 4);
  auto mid = s.CountsInRange(2, 5);  // "101"
  EXPECT_EQ(mid[0], 1);
  EXPECT_EQ(mid[1], 2);
  auto empty = s.CountsInRange(3, 3);
  EXPECT_EQ(empty[0], 0);
  EXPECT_EQ(empty[1], 0);
}

TEST(SequenceTest, SubstringToString) {
  Alphabet a = Alphabet::FromCharacters("xyz").value();
  Sequence s = Sequence::FromString(a, "xyzzyx").value();
  EXPECT_EQ(s.SubstringToString(a, 1, 4), "yzz");
  EXPECT_EQ(s.SubstringToString(a, 0, 0), "");
  EXPECT_EQ(s.SubstringToString(a, 0, 6), "xyzzyx");
}

TEST(SequenceTest, SymbolsSpanView) {
  Sequence s = Sequence::FromSymbols(3, {1, 2, 0, 1}).value();
  auto view = s.symbols();
  ASSERT_EQ(view.size(), 4u);
  EXPECT_EQ(view[1], 2);
}

}  // namespace
}  // namespace seq
}  // namespace sigsub
