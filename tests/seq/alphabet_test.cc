#include "seq/alphabet.h"

#include "gtest/gtest.h"

namespace sigsub {
namespace seq {
namespace {

TEST(AlphabetTest, FromCharactersBasics) {
  auto result = Alphabet::FromCharacters("ACGT");
  ASSERT_TRUE(result.ok());
  const Alphabet& a = result.value();
  EXPECT_EQ(a.size(), 4);
  EXPECT_EQ(a.CharOf(0), 'A');
  EXPECT_EQ(a.CharOf(3), 'T');
  EXPECT_EQ(a.characters(), "ACGT");
}

TEST(AlphabetTest, SymbolLookup) {
  auto a = Alphabet::FromCharacters("ACGT").value();
  EXPECT_EQ(a.SymbolOf('A').value(), 0);
  EXPECT_EQ(a.SymbolOf('G').value(), 2);
  EXPECT_TRUE(a.SymbolOf('X').status().IsNotFound());
  EXPECT_TRUE(a.Contains('C'));
  EXPECT_FALSE(a.Contains('x'));
}

TEST(AlphabetTest, RejectsTooSmall) {
  EXPECT_TRUE(Alphabet::FromCharacters("").status().IsInvalidArgument());
  EXPECT_TRUE(Alphabet::FromCharacters("a").status().IsInvalidArgument());
}

TEST(AlphabetTest, RejectsDuplicates) {
  EXPECT_TRUE(Alphabet::FromCharacters("abca").status().IsInvalidArgument());
}

TEST(AlphabetTest, BinaryAlphabet) {
  Alphabet b = Alphabet::Binary();
  EXPECT_EQ(b.size(), 2);
  EXPECT_EQ(b.CharOf(0), '0');
  EXPECT_EQ(b.CharOf(1), '1');
}

TEST(AlphabetTest, CanonicalSmall) {
  Alphabet c = Alphabet::Canonical(5);
  EXPECT_EQ(c.size(), 5);
  EXPECT_EQ(c.characters(), "abcde");
  EXPECT_EQ(c.SymbolOf('c').value(), 2);
}

TEST(AlphabetTest, CanonicalLargeUsesRawBytes) {
  Alphabet c = Alphabet::Canonical(100);
  EXPECT_EQ(c.size(), 100);
  // Symbols still map uniquely.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(c.SymbolOf(c.CharOf(static_cast<Symbol>(i))).value(), i);
  }
}

TEST(AlphabetTest, NonAsciiCharactersWork) {
  auto a = Alphabet::FromCharacters("\x01\x02\xff");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->SymbolOf('\xff').value(), 2);
}

}  // namespace
}  // namespace seq
}  // namespace sigsub
