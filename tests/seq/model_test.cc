#include "seq/model.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "seq/rng.h"

namespace sigsub {
namespace seq {
namespace {

TEST(MultinomialModelTest, MakeValidates) {
  EXPECT_TRUE(MultinomialModel::Make({0.5, 0.5}).ok());
  EXPECT_TRUE(MultinomialModel::Make({0.5}).status().IsInvalidArgument());
  EXPECT_TRUE(
      MultinomialModel::Make({0.5, 0.6}).status().IsInvalidArgument());
  EXPECT_TRUE(
      MultinomialModel::Make({1.0, 0.0}).status().IsInvalidArgument());
  EXPECT_TRUE(
      MultinomialModel::Make({-0.2, 1.2}).status().IsInvalidArgument());
}

TEST(MultinomialModelTest, UniformProbabilities) {
  MultinomialModel m = MultinomialModel::Uniform(4);
  EXPECT_EQ(m.alphabet_size(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(m.prob(i), 0.25);
}

TEST(MultinomialModelTest, GeometricDecaysByHalves) {
  MultinomialModel m = MultinomialModel::Geometric(4);
  // p_i ∝ 2^{-i}: ratios of consecutive probabilities are exactly 2.
  for (int i = 0; i + 1 < 4; ++i) {
    EXPECT_NEAR(m.prob(i) / m.prob(i + 1), 2.0, 1e-12);
  }
  double sum = 0.0;
  for (int i = 0; i < 4; ++i) sum += m.prob(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(MultinomialModelTest, HarmonicDecay) {
  MultinomialModel m = MultinomialModel::Harmonic(5);
  for (int i = 0; i + 1 < 5; ++i) {
    EXPECT_NEAR(m.prob(i) / m.prob(i + 1),
                static_cast<double>(i + 2) / (i + 1), 1e-12);
  }
}

TEST(MultinomialModelTest, CumulativeEndsAtOne) {
  MultinomialModel m = MultinomialModel::Harmonic(7);
  EXPECT_DOUBLE_EQ(m.cumulative().back(), 1.0);
  for (size_t i = 1; i < m.cumulative().size(); ++i) {
    EXPECT_GT(m.cumulative()[i], m.cumulative()[i - 1]);
  }
}

TEST(MultinomialModelTest, SampleSymbolRespectsBoundaries) {
  MultinomialModel m = MultinomialModel::Make({0.2, 0.3, 0.5}).value();
  EXPECT_EQ(m.SampleSymbol(0.0), 0);
  EXPECT_EQ(m.SampleSymbol(0.1999), 0);
  EXPECT_EQ(m.SampleSymbol(0.2001), 1);
  EXPECT_EQ(m.SampleSymbol(0.4999), 1);
  EXPECT_EQ(m.SampleSymbol(0.5001), 2);
  EXPECT_EQ(m.SampleSymbol(0.9999), 2);
}

TEST(MultinomialModelTest, SampledFrequenciesConverge) {
  MultinomialModel m = MultinomialModel::Make({0.1, 0.2, 0.7}).value();
  Rng rng(7);
  std::vector<int64_t> counts(3, 0);
  const int64_t n = 200000;
  for (int64_t i = 0; i < n; ++i) ++counts[m.SampleSymbol(rng.NextDouble())];
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, m.prob(i), 0.01) << i;
  }
}

TEST(MarkovModelTest, MakeValidates) {
  // Rows must sum to one.
  EXPECT_TRUE(MarkovModel::Make(2, {0.5, 0.5, 0.7, 0.7}, {0.5, 0.5})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(MarkovModel::Make(2, {0.5, 0.5, 0.5}, {0.5, 0.5})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(MarkovModel::Make(2, {0.5, 0.5, 0.3, 0.7}, {0.9, 0.2})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      MarkovModel::Make(2, {0.5, 0.5, 0.3, 0.7}, {0.5, 0.5}).ok());
}

TEST(MarkovModelTest, BiasedBinaryTransitions) {
  MarkovModel m = MarkovModel::BiasedBinary(0.8);
  EXPECT_DOUBLE_EQ(m.transition(0, 0), 0.8);
  EXPECT_DOUBLE_EQ(m.transition(0, 1), 0.2);
  EXPECT_DOUBLE_EQ(m.transition(1, 1), 0.8);
  EXPECT_DOUBLE_EQ(m.transition(1, 0), 0.2);
}

TEST(MarkovModelTest, BiasedBinaryStationaryIsUniform) {
  MarkovModel m = MarkovModel::BiasedBinary(0.73);
  std::vector<double> pi = m.StationaryDistribution();
  ASSERT_EQ(pi.size(), 2u);
  EXPECT_NEAR(pi[0], 0.5, 1e-10);
  EXPECT_NEAR(pi[1], 0.5, 1e-10);
}

TEST(MarkovModelTest, PaperFamilyRowsSumToOne) {
  for (int k : {2, 3, 5, 10}) {
    MarkovModel m = MarkovModel::PaperFamily(k);
    for (int i = 0; i < k; ++i) {
      double row = 0.0;
      for (int j = 0; j < k; ++j) row += m.transition(i, j);
      EXPECT_NEAR(row, 1.0, 1e-12) << "k=" << k << " row=" << i;
    }
  }
}

TEST(MarkovModelTest, PaperFamilySelfTransitionDominates) {
  // T[i][j] ∝ 2^{-((i-j) mod k)}: staying (d = 0) has the largest weight.
  MarkovModel m = MarkovModel::PaperFamily(5);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      if (j != i) {
        EXPECT_GT(m.transition(i, i), m.transition(i, j));
      }
    }
  }
}

TEST(MarkovModelTest, StationaryIsFixedPoint) {
  MarkovModel m = MarkovModel::PaperFamily(4);
  std::vector<double> pi = m.StationaryDistribution();
  double sum = std::accumulate(pi.begin(), pi.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-10);
  for (int j = 0; j < 4; ++j) {
    double next = 0.0;
    for (int i = 0; i < 4; ++i) next += pi[i] * m.transition(i, j);
    EXPECT_NEAR(next, pi[j], 1e-9) << j;
  }
}

TEST(MarkovModelTest, SampleNextRespectsRowBoundaries) {
  MarkovModel m = MarkovModel::Make(2, {0.9, 0.1, 0.4, 0.6}, {0.5, 0.5})
                      .value();
  EXPECT_EQ(m.SampleNext(0, 0.85), 0);
  EXPECT_EQ(m.SampleNext(0, 0.95), 1);
  EXPECT_EQ(m.SampleNext(1, 0.35), 0);
  EXPECT_EQ(m.SampleNext(1, 0.45), 1);
}

}  // namespace
}  // namespace seq
}  // namespace sigsub
