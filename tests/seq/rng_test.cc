#include "seq/rng.h"

#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace sigsub {
namespace seq {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 32; ++i) seen.insert(r.NextUint64());
  EXPECT_GT(seen.size(), 30u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double u = r.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng r(13);
  std::vector<int64_t> hist(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    uint64_t v = r.NextBounded(10);
    ASSERT_LT(v, 10u);
    ++hist[v];
  }
  // Roughly uniform.
  for (int64_t count : hist) {
    EXPECT_NEAR(static_cast<double>(count) / n, 0.1, 0.01);
  }
}

TEST(RngTest, NextBernoulliFrequency) {
  Rng r(17);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += r.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStreams) {
  Rng parent(23);
  Rng child1 = parent.Split();
  Rng child2 = parent.Split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.NextUint64() == child2.NextUint64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a(31);
  Rng b(31);
  Rng ca = a.Split();
  Rng cb = b.Split();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(ca.NextUint64(), cb.NextUint64());
  }
}

}  // namespace
}  // namespace seq
}  // namespace sigsub
