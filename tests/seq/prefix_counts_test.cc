#include "seq/prefix_counts.h"

#include <vector>

#include "gtest/gtest.h"
#include "seq/generators.h"
#include "seq/rng.h"
#include "seq/sequence.h"

namespace sigsub {
namespace seq {
namespace {

TEST(PrefixCountsTest, SmallHandComputed) {
  Sequence s = Sequence::FromSymbols(2, {0, 1, 1, 0, 1}).value();
  PrefixCounts pc(s);
  EXPECT_EQ(pc.sequence_size(), 5);
  EXPECT_EQ(pc.alphabet_size(), 2);
  EXPECT_EQ(pc.PrefixCount(0, 0), 0);
  EXPECT_EQ(pc.PrefixCount(0, 1), 1);
  EXPECT_EQ(pc.PrefixCount(1, 3), 2);
  EXPECT_EQ(pc.PrefixCount(1, 5), 3);
  EXPECT_EQ(pc.CountInRange(1, 1, 3), 2);
  EXPECT_EQ(pc.CountInRange(0, 1, 3), 0);
  EXPECT_EQ(pc.CountInRange(0, 0, 5), 2);
}

TEST(PrefixCountsTest, FillCountsMatchesDirectCount) {
  Rng rng(123);
  for (int k : {2, 4, 7}) {
    Sequence s = GenerateNull(k, 300, rng);
    PrefixCounts pc(s);
    std::vector<int64_t> fast(k);
    for (int64_t start = 0; start <= s.size(); start += 13) {
      for (int64_t end = start; end <= s.size(); end += 17) {
        pc.FillCounts(start, end, fast);
        std::vector<int64_t> slow = s.CountsInRange(start, end);
        EXPECT_EQ(fast, slow) << "k=" << k << " [" << start << "," << end
                              << ")";
      }
    }
  }
}

TEST(PrefixCountsTest, RowSpansHaveCorrectShape) {
  Rng rng(5);
  Sequence s = GenerateNull(3, 50, rng);
  PrefixCounts pc(s);
  for (int c = 0; c < 3; ++c) {
    auto row = pc.Row(c);
    ASSERT_EQ(row.size(), 51u);
    EXPECT_EQ(row[0], 0);
    // Row is non-decreasing and steps by at most 1.
    for (size_t i = 1; i < row.size(); ++i) {
      EXPECT_GE(row[i], row[i - 1]);
      EXPECT_LE(row[i] - row[i - 1], 1);
    }
  }
}

TEST(PrefixCountsTest, TotalCountsSumToLength) {
  Rng rng(99);
  Sequence s = GenerateNull(5, 128, rng);
  PrefixCounts pc(s);
  for (int64_t pos = 0; pos <= s.size(); ++pos) {
    int64_t total = 0;
    for (int c = 0; c < 5; ++c) total += pc.PrefixCount(c, pos);
    EXPECT_EQ(total, pos);
  }
}

TEST(PrefixCountsTest, EmptyRangeIsZero) {
  Sequence s = Sequence::FromSymbols(2, {1, 0, 1}).value();
  PrefixCounts pc(s);
  std::vector<int64_t> counts(2);
  pc.FillCounts(2, 2, counts);
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 0);
}

}  // namespace
}  // namespace seq
}  // namespace sigsub
