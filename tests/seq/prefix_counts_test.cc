#include "seq/prefix_counts.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "seq/generators.h"
#include "seq/rng.h"
#include "seq/sequence.h"

namespace sigsub {
namespace seq {
namespace {

TEST(PrefixCountsTest, SmallHandComputed) {
  Sequence s = Sequence::FromSymbols(2, {0, 1, 1, 0, 1}).value();
  PrefixCounts pc(s);
  EXPECT_EQ(pc.sequence_size(), 5);
  EXPECT_EQ(pc.alphabet_size(), 2);
  EXPECT_EQ(pc.PrefixCount(0, 0), 0);
  EXPECT_EQ(pc.PrefixCount(0, 1), 1);
  EXPECT_EQ(pc.PrefixCount(1, 3), 2);
  EXPECT_EQ(pc.PrefixCount(1, 5), 3);
  EXPECT_EQ(pc.CountInRange(1, 1, 3), 2);
  EXPECT_EQ(pc.CountInRange(0, 1, 3), 0);
  EXPECT_EQ(pc.CountInRange(0, 0, 5), 2);
}

TEST(PrefixCountsTest, FillCountsMatchesDirectCount) {
  Rng rng(123);
  for (int k : {2, 4, 7}) {
    Sequence s = GenerateNull(k, 300, rng);
    PrefixCounts pc(s);
    std::vector<int64_t> fast(k);
    for (int64_t start = 0; start <= s.size(); start += 13) {
      for (int64_t end = start; end <= s.size(); end += 17) {
        pc.FillCounts(start, end, fast);
        std::vector<int64_t> slow = s.CountsInRange(start, end);
        EXPECT_EQ(fast, slow) << "k=" << k << " [" << start << "," << end
                              << ")";
      }
    }
  }
}

TEST(PrefixCountsTest, RowViewsHaveCorrectShape) {
  Rng rng(5);
  Sequence s = GenerateNull(3, 50, rng);
  PrefixCounts pc(s);
  for (int c = 0; c < 3; ++c) {
    PrefixCounts::SymbolRow row = pc.Row(c);
    ASSERT_EQ(row.size(), 51u);
    EXPECT_EQ(row[0], 0);
    // Row is non-decreasing and steps by at most 1.
    for (size_t i = 1; i < row.size(); ++i) {
      EXPECT_GE(row[i], row[i - 1]);
      EXPECT_LE(row[i] - row[i - 1], 1);
    }
  }
}

TEST(PrefixCountsTest, RowViewMatchesPrefixCount) {
  Rng rng(6);
  Sequence s = GenerateNull(4, 200, rng);
  PrefixCounts pc(s);
  for (int c = 0; c < 4; ++c) {
    PrefixCounts::SymbolRow row = pc.Row(c);
    for (int64_t pos = 0; pos <= s.size(); ++pos) {
      ASSERT_EQ(row[pos], pc.PrefixCount(c, pos)) << "c=" << c;
    }
  }
}

// Property test for the flat position-major layout: on random sequences —
// including the extreme alphabet sizes and the degenerate ranges — every
// FillCounts answer must agree with a straightforward per-symbol recount of
// the underlying symbols.
TEST(PrefixCountsTest, FlatLayoutAgreesWithPerSymbolRecount) {
  Rng rng(20260729);
  for (int k : {2, 3, 26}) {
    for (int64_t n : {int64_t{1}, int64_t{37}, int64_t{512}}) {
      Sequence s = GenerateNull(k, n, rng);
      PrefixCounts pc(s);
      std::vector<int64_t> fast(k);
      auto recount = [&](int64_t start, int64_t end) {
        std::vector<int64_t> slow(k, 0);
        for (int64_t i = start; i < end; ++i) ++slow[s[i]];
        return slow;
      };
      // Random ranges plus the empty and full-sequence ranges.
      for (int trial = 0; trial < 64; ++trial) {
        int64_t a = static_cast<int64_t>(rng.NextDouble() * (n + 1));
        int64_t b = static_cast<int64_t>(rng.NextDouble() * (n + 1));
        if (a > b) std::swap(a, b);
        pc.FillCounts(a, b, fast);
        ASSERT_EQ(fast, recount(a, b)) << "k=" << k << " [" << a << "," << b
                                       << ")";
      }
      for (int64_t pos = 0; pos <= n; ++pos) {
        pc.FillCounts(pos, pos, fast);
        ASSERT_EQ(fast, std::vector<int64_t>(k, 0)) << "empty at " << pos;
      }
      pc.FillCounts(0, n, fast);
      ASSERT_EQ(fast, recount(0, n)) << "full range, k=" << k;
    }
  }
}

TEST(PrefixCountsTest, TotalCountsSumToLength) {
  Rng rng(99);
  Sequence s = GenerateNull(5, 128, rng);
  PrefixCounts pc(s);
  for (int64_t pos = 0; pos <= s.size(); ++pos) {
    int64_t total = 0;
    for (int c = 0; c < 5; ++c) total += pc.PrefixCount(c, pos);
    EXPECT_EQ(total, pos);
  }
}

TEST(PrefixCountsTest, EmptyRangeIsZero) {
  Sequence s = Sequence::FromSymbols(2, {1, 0, 1}).value();
  PrefixCounts pc(s);
  std::vector<int64_t> counts(2);
  pc.FillCounts(2, 2, counts);
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 0);
}

}  // namespace
}  // namespace seq
}  // namespace sigsub
