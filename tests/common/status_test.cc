#include "common/status.h"

#include <string>

#include "common/result.h"
#include "gtest/gtest.h"

namespace sigsub {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");

  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
}

TEST(StatusTest, CopySharesRepresentation) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_EQ(a, b);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_NE(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_NE(Status::NotFound("x"), Status::Internal("x"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  SIGSUB_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> DoubledTwice(int x) {
  SIGSUB_ASSIGN_OR_RETURN(int once, Doubled(x));
  return Doubled(once);
}

}  // namespace helpers

TEST(ResultMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::Chained(1).ok());
  EXPECT_TRUE(helpers::Chained(-1).IsInvalidArgument());
}

TEST(ResultMacrosTest, AssignOrReturnPropagates) {
  auto ok = helpers::DoubledTwice(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 12);
  EXPECT_TRUE(helpers::DoubledTwice(-3).status().IsInvalidArgument());
}

}  // namespace
}  // namespace sigsub
