#include "common/mutex.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace sigsub {
namespace {

TEST(MutexTest, LockUnlockRoundTrip) {
  Mutex mu;
  mu.Lock();
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, TryLockFailsWhileHeld) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> acquired{true};
  // try_lock from the owning thread is UB on std::mutex; probe from a
  // second thread, where contention is the defined answer.
  std::thread prober([&] { acquired.store(mu.TryLock()); });
  prober.join();
  EXPECT_FALSE(acquired.load());
  mu.Unlock();
}

TEST(MutexTest, MutexLockExcludesConcurrentIncrements) {
  // Hammer one counter from several threads; with MutexLock the result is
  // exact. Under the CI sanitizer matrix this is also a TSan probe on the
  // wrapper itself.
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  Mutex mu;
  int64_t counter = 0;  // Protected by mu (a local, so not annotatable).
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, int64_t{kThreads} * kIncrements);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // Protected by mu.

  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
}

TEST(CondVarTest, ProducerConsumerHandshake) {
  // A bounded single-slot queue: the canonical two-condition pattern the
  // wrapper has to support (Wait reacquires the mutex before returning).
  Mutex mu;
  CondVar item_ready;
  CondVar slot_free;
  std::deque<int> slot;  // Protected by mu.
  constexpr int kItems = 1000;

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      MutexLock lock(mu);
      while (!slot.empty()) slot_free.Wait(mu);
      slot.push_back(i);
      item_ready.NotifyOne();
    }
  });

  int64_t sum = 0;
  for (int i = 0; i < kItems; ++i) {
    MutexLock lock(mu);
    while (slot.empty()) item_ready.Wait(mu);
    sum += slot.front();
    slot.pop_front();
    slot_free.NotifyOne();
  }
  producer.join();
  EXPECT_EQ(sum, int64_t{kItems} * (kItems - 1) / 2);
}

}  // namespace
}  // namespace sigsub
