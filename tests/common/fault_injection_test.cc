#include "common/fault_injection.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <string>

#include "gtest/gtest.h"
#include "common/posix_io.h"
#include "common/result.h"
#include "testing/test_util.h"

namespace sigsub {
namespace fault {
namespace {

/// Every test leaves the process-global shim disarmed — a leaked fault
/// would fail an unrelated test's I/O in the same binary.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { Disarm(); }
};

TEST_F(FaultInjectionTest, ArmAcceptsTheDocumentedGrammar) {
  EXPECT_TRUE(Arm("write:1:ENOSPC").ok());
  EXPECT_TRUE(Arm("read:3:EIO").ok());
  EXPECT_TRUE(Arm("fsync:2:EPIPE").ok());
  EXPECT_TRUE(Arm("write:7:28").ok());  // Numeric errno (28 = ENOSPC).
  EXPECT_TRUE(Arm("write:1:short").ok());
  EXPECT_TRUE(Arm("write:4:kill").ok());
  EXPECT_TRUE(Enabled());
}

TEST_F(FaultInjectionTest, ArmRejectsBadSpecsByName) {
  for (const char* bad :
       {"", "write", "write:1", "chmod:1:EIO", "write:0:EIO",
        "write:-1:EIO", "write:x:EIO", "write:1:EWHAT", "write:1:",
        "read:1:short", "fsync:1:short", "::"}) {
    Status status = Arm(bad);
    EXPECT_FALSE(status.ok()) << "spec \"" << bad << "\" was accepted";
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << bad;
  }
  // A rejected spec must not leave a half-armed fault behind.
  EXPECT_FALSE(Enabled());
}

TEST_F(FaultInjectionTest, DisarmedShimNeverFires) {
  ASSERT_FALSE(Enabled());
  for (int i = 0; i < 100; ++i) {
    Decision d = OnCall(Op::kWrite);
    EXPECT_FALSE(d.fire);
  }
}

TEST_F(FaultInjectionTest, FiresOnExactlyTheNthCall) {
  ASSERT_OK(Arm("write:3:ENOSPC"));
  EXPECT_FALSE(OnCall(Op::kWrite).fire);
  EXPECT_FALSE(OnCall(Op::kWrite).fire);
  Decision d = OnCall(Op::kWrite);
  EXPECT_TRUE(d.fire);
  EXPECT_EQ(d.action, Action::kErrno);
  EXPECT_EQ(d.error, ENOSPC);
  // One-shot per arm: later calls proceed.
  EXPECT_FALSE(OnCall(Op::kWrite).fire);
}

TEST_F(FaultInjectionTest, OtherOpsDoNotAdvanceTheArmedCounter) {
  ASSERT_OK(Arm("fsync:2:EIO"));
  EXPECT_FALSE(OnCall(Op::kWrite).fire);
  EXPECT_FALSE(OnCall(Op::kRead).fire);
  EXPECT_FALSE(OnCall(Op::kFsync).fire);
  Decision d = OnCall(Op::kFsync);
  EXPECT_TRUE(d.fire);
  EXPECT_EQ(d.error, EIO);
}

TEST_F(FaultInjectionTest, CallCountsTrackPerOp) {
  ASSERT_OK(Arm("write:100:EIO"));
  OnCall(Op::kWrite);
  OnCall(Op::kWrite);
  OnCall(Op::kRead);
  EXPECT_EQ(CallCount(Op::kWrite), 2);
  EXPECT_EQ(CallCount(Op::kRead), 1);
  EXPECT_EQ(CallCount(Op::kFsync), 0);
  Disarm();
  EXPECT_EQ(CallCount(Op::kWrite), 0);
}

TEST_F(FaultInjectionTest, ErrnoPropagatesThroughRawWrite) {
  char path[] = "/tmp/sigsub_fault_XXXXXX";
  int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  ASSERT_OK(Arm("write:2:ENOSPC"));
  EXPECT_EQ(RawWrite(fd, "aa", 2), 2);  // First write proceeds.
  errno = 0;
  EXPECT_EQ(RawWrite(fd, "bb", 2), -1);
  EXPECT_EQ(errno, ENOSPC);
  EXPECT_EQ(RawWrite(fd, "cc", 2), 2);  // Fault was one-shot.
  ::close(fd);
  ::unlink(path);
}

TEST_F(FaultInjectionTest, ShortWriteLandsHalfTheBytes) {
  char path[] = "/tmp/sigsub_fault_XXXXXX";
  int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  ASSERT_OK(Arm("write:1:short"));
  EXPECT_EQ(RawWrite(fd, "abcdefgh", 8), 4);
  ::close(fd);
  ASSERT_OK_AND_ASSIGN(std::string contents, ReadFileToString(path));
  EXPECT_EQ(contents, "abcd");
  ::unlink(path);
}

TEST_F(FaultInjectionTest, WriteFdAllRecoversFromAShortWrite) {
  // WriteFdAll loops on partial counts, so a single injected short
  // write must not lose bytes — only a hard errno can.
  char path[] = "/tmp/sigsub_fault_XXXXXX";
  int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  ASSERT_OK(Arm("write:1:short"));
  ASSERT_OK(WriteFdAll(fd, "abcdefgh"));
  ::close(fd);
  ASSERT_OK_AND_ASSIGN(std::string contents, ReadFileToString(path));
  EXPECT_EQ(contents, "abcdefgh");
  ::unlink(path);
}

TEST_F(FaultInjectionTest, ErrnoPropagatesThroughRawFsync) {
  char path[] = "/tmp/sigsub_fault_XXXXXX";
  int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  ASSERT_OK(Arm("fsync:1:EIO"));
  errno = 0;
  EXPECT_EQ(RawFsync(fd), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(RawFsync(fd), 0);
  ::close(fd);
  ::unlink(path);
}

TEST_F(FaultInjectionTest, ArmFromEnvIsANoOpWhenUnset) {
  ::unsetenv("SIGSUB_FAULT");
  EXPECT_TRUE(ArmFromEnv().ok());
  EXPECT_FALSE(Enabled());
  ::setenv("SIGSUB_FAULT", "write:2:EIO", 1);
  EXPECT_TRUE(ArmFromEnv().ok());
  EXPECT_TRUE(Enabled());
  ::unsetenv("SIGSUB_FAULT");
}

}  // namespace
}  // namespace fault
}  // namespace sigsub
