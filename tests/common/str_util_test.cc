#include "common/str_util.h"

#include "gtest/gtest.h"

namespace sigsub {
namespace {

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("n=", 42, ", p=", 0.5), "n=42, p=0.5");
  EXPECT_EQ(StrCat(), "");
  EXPECT_EQ(StrCat("solo"), "solo");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(StrJoin({"a"}, ","), "a");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"x", "y"}, " -> "), "x -> y");
}

TEST(StrSplitTest, SplitsKeepingEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrSplitJoinTest, RoundTrips) {
  std::vector<std::string> parts{"alpha", "", "gamma", "delta"};
  EXPECT_EQ(StrSplit(StrJoin(parts, "|"), '|'), parts);
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d/%d", 3, 4), "3/4");
  EXPECT_EQ(StrFormat("%.2f%%", 54.268), "54.27%");
  EXPECT_EQ(StrFormat("%s", ""), "");
  EXPECT_EQ(StrFormat("%05d", 42), "00042");
}

TEST(StrFormatTest, LongOutputIsNotTruncated) {
  std::string long_arg(5000, 'x');
  std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 5002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

}  // namespace
}  // namespace sigsub
