#include "common/check.h"

#include "gtest/gtest.h"

namespace sigsub {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  SIGSUB_CHECK(1 + 1 == 2);
  SIGSUB_CHECK_MSG(2 < 3, "math still works: %d", 42);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(SIGSUB_CHECK(false), "SIGSUB_CHECK failed");
  EXPECT_DEATH(SIGSUB_CHECK_MSG(false, "context %s", "payload"),
               "context payload");
}

TEST(CheckTest, PassingDchecksAreSilent) {
  SIGSUB_DCHECK(1 + 1 == 2);
  SIGSUB_DCHECK_MSG(2 < 3, "still fine: %d", 7);
}

TEST(CheckTest, DcheckConditionIsNotEvaluatedInRelease) {
  // The NDEBUG expansion must still *type-check* the condition (so
  // variables referenced only in checks count as used) without
  // *evaluating* it. In debug builds the condition runs and passes.
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return true;
  };
  SIGSUB_DCHECK(count());
  SIGSUB_DCHECK_MSG(count(), "evaluated %d times", evaluations);
#ifdef NDEBUG
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_EQ(evaluations, 2);
#endif
}

TEST(CheckTest, DcheckUsesItsOperandsInRelease) {
  // A variable that exists only to be checked must not trip
  // -Wunused-variable (or -Wunused-but-set-variable) when NDEBUG
  // compiles the check away; the build itself is the assertion (-Wall
  // -Wextra on the test tree).
  const bool invariant_holds = true;
  SIGSUB_DCHECK(invariant_holds);
  bool updated = false;
  updated = true;
  SIGSUB_DCHECK_MSG(updated, "flag should be set");
}

#ifndef NDEBUG
TEST(CheckDeathTest, FailingDcheckAbortsInDebug) {
  EXPECT_DEATH(SIGSUB_DCHECK(false), "SIGSUB_CHECK failed");
  EXPECT_DEATH(SIGSUB_DCHECK_MSG(false, "debug %s", "details"),
               "debug details");
}
#else
TEST(CheckTest, FailingDcheckIsANoOpInRelease) {
  SIGSUB_DCHECK(false);
  SIGSUB_DCHECK_MSG(false, "never printed");
}
#endif

}  // namespace
}  // namespace sigsub
